//! The engine: catalog + planner + cache + shared thread pool, fronted
//! by the [session](crate::session) layer's admission queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use skyline_core::algo::Algorithm;
use skyline_core::dominance::simd::{flip_pref, TileStore};
use skyline_core::skyband::{skyband_counts, top_k_dominating};
use skyline_core::{maintain, RunStats, SpanSink};
use skyline_data::persist::{StdIo, WalIo};
use skyline_data::{Dataset, PartitionerKind, ShardedStore};
use skyline_parallel::{available_threads, par_chunks_mut, LaneCounters, ThreadPool};

use crate::cache::{CacheKey, CacheStats, CachedValue, ResultCache};
use crate::catalog::{Catalog, DatasetEntry, MutationOutcome};
use crate::clock::{Clock, MonotonicClock};
use crate::error::EngineError;
use crate::merge::{
    merge_local_skybands, merge_local_skylines, MergeStats, ShardSkyband, ShardSkyline,
};
use crate::planner::feedback::{
    FeedbackConfig, FeedbackLoop, FeedbackStats, Observation, PlanKind,
};
use crate::planner::{Planner, PlannerConfig, PriorResult, QueryPlan, Strategy, SuperspaceSeed};
use crate::query::{QueryKind, QueryResult, SkylineQuery};
use crate::recovery::{Durability, DurabilityOptions, RecoveryReport};
use crate::session::{
    AdmissionConfig, Session, SessionOptions, SessionRuntime, SessionStats, TicketState,
};
use crate::telemetry::{
    ActiveTrace, MetricsRegistry, MetricsSnapshot, QueryTrace, QueueWaitHistograms, SpanKind,
    Telemetry, TelemetryConfig,
};

/// Construction-time knobs for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Thread lanes of the shared pool; `0` uses every available core.
    pub threads: usize,
    /// Result-cache budget in **bytes** (skylines range from one index
    /// to ~n of them, so entries are charged their actual footprint);
    /// `0` disables caching.
    pub cache_bytes: usize,
    /// Tombstone fraction above which a mutation batch compacts the
    /// dataset (rebuilds the base, renumbering the surviving rows).
    /// Values above `1.0` disable compaction.
    pub compact_fraction: f32,
    /// Adaptive per-shard compaction for sharded datasets: a touched
    /// shard also compacts once queries have skipped `factor × live`
    /// tombstoned rows in it (the scan debt fed back from sharded
    /// query execution), however small its dead fraction — compaction
    /// triggered by *observed* tombstone-scan cost rather than a fixed
    /// threshold. `None` leaves shards on
    /// [`compact_fraction`](Self::compact_fraction) alone.
    pub shard_debt_factor: Option<f32>,
    /// Planner thresholds — the *starting point*; with feedback
    /// enabled they are re-fitted online from observed runtimes.
    pub planner: PlannerConfig,
    /// The planner feedback loop: whether completed queries are
    /// recorded and the planner thresholds re-fitted from them, and at
    /// what cadence. Disabled by default.
    pub feedback: FeedbackConfig,
    /// The session layer's admission queue: per-class capacity, batch
    /// size per dispatch pass, and whether a background dispatcher
    /// thread runs.
    pub admission: AdmissionConfig,
    /// The telemetry layer: metrics registry, per-query traces, and the
    /// slow-query log. Enabled by default (see
    /// [`TelemetryConfig::enabled`] for what disabling turns off).
    pub telemetry: TelemetryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_bytes: 8 << 20,
            compact_fraction: 0.25,
            shard_debt_factor: Some(4.0),
            planner: PlannerConfig::default(),
            feedback: FeedbackConfig::default(),
            admission: AdmissionConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// The outcome of one mutation batch applied through the engine.
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// The dataset's new version.
    pub version: u64,
    /// Stable row ids assigned to the inserted rows, in input order.
    pub inserted_ids: Vec<u32>,
    /// Number of rows deleted.
    pub deleted: usize,
    /// Whether the batch compacted the dataset: surviving rows were
    /// renumbered contiguously (previously returned ids are void) and
    /// every prior cached result was invalidated.
    pub compacted: bool,
    /// Cached results patched forward to the new version by applying
    /// the delta kernels instead of recomputing.
    pub cache_patched: usize,
    /// Cached results dropped by this batch: the delta was too large
    /// to ever patch through, the delta log rotated past their
    /// version, or a compaction voided everything. (Deletes within
    /// the patchable window drop nothing — their entries stay for
    /// query-time delta plans.)
    pub cache_dropped: usize,
}

/// A thread-safe skyline query engine over **mutable** datasets.
///
/// Owns a dataset [catalog](Catalog), an adaptive [planner](Planner),
/// a byte-bounded LRU [result cache](ResultCache), and one shared
/// [`ThreadPool`] that every query executes on — concurrent callers
/// share the pool (the pool serialises parallel regions internally)
/// instead of oversubscribing the machine with per-query pools.
///
/// Datasets evolve in place through [`insert`](Engine::insert),
/// [`delete`](Engine::delete), and
/// [`update_batch`](Engine::update_batch): each batch bumps the
/// version, patches the catalog's statistics incrementally, and
/// carries cached results forward through the delta kernels instead of
/// discarding them.
///
/// ```
/// use skyline_engine::{Engine, SkylineQuery};
/// use skyline_data::Dataset;
///
/// let engine = Engine::new();
/// let hotels = Dataset::from_rows(&[
///     vec![120.0, 2.0],
///     vec![90.0, 5.0],
///     vec![130.0, 1.0],
///     vec![150.0, 4.0], // dominated
/// ])
/// .unwrap();
/// engine.register("hotels", hotels);
///
/// let result = engine.execute(&SkylineQuery::new("hotels")).unwrap();
/// assert_eq!(result.indices(), &[0, 1, 2]);
///
/// // Same query again: served from the cache.
/// let again = engine.execute(&SkylineQuery::new("hotels")).unwrap();
/// assert!(again.cache_hit);
///
/// // A new hotel joins the skyline without recomputation: the cached
/// // result is patched forward and the next query still hits.
/// let report = engine.insert("hotels", &[vec![100.0, 3.0]]).unwrap();
/// assert_eq!(report.inserted_ids, vec![4]);
/// let fresh = engine.execute(&SkylineQuery::new("hotels")).unwrap();
/// assert!(fresh.cache_hit);
/// assert_eq!(fresh.indices(), &[0, 1, 2, 4]);
/// ```
#[derive(Debug)]
pub struct Engine {
    shared: Arc<EngineShared>,
    sessions: Arc<SessionRuntime>,
    /// The engine's own session, backing the blocking
    /// [`execute`](Engine::execute)/[`execute_batch`](Engine::execute_batch)
    /// wrappers: anonymous tenant, [`Priority::Normal`](crate::Priority::Normal),
    /// no quotas.
    direct: Session,
}

/// Everything the engine's execution paths touch, shared between the
/// public [`Engine`] handle, its [`Session`]s and tickets, and the
/// dispatcher thread.
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub(crate) pool: Arc<ThreadPool>,
    pub(crate) catalog: Catalog,
    pub(crate) cache: ResultCache,
    pub(crate) planner: Planner,
    pub(crate) compact_fraction: f32,
    pub(crate) shard_debt_factor: Option<f32>,
    /// Present iff [`FeedbackConfig::enabled`]: records completed
    /// queries and periodically re-fits the planner's thresholds.
    pub(crate) feedback: Option<Arc<FeedbackLoop>>,
    /// The engine's time source: drives deadline expiry, quota windows,
    /// and the feedback loop's measurements. A
    /// [`ManualClock`](crate::ManualClock) makes all three
    /// deterministic under test.
    pub(crate) clock: Arc<dyn Clock>,
    /// Present iff [`TelemetryConfig::enabled`]: the metrics registry,
    /// trace machinery, and slow-query ring.
    pub(crate) telemetry: Option<Arc<Telemetry>>,
    /// The per-class `session.queue_wait` histograms — the single
    /// source of queue-wait truth, shared with the feedback loop and
    /// (when enabled) exposed through the registry. Always present:
    /// three lock-free histograms cost nothing measurable.
    pub(crate) queue_waits: Arc<QueueWaitHistograms>,
    /// Set once by [`Engine::open_durable`] **after** recovery replay
    /// completes: while unset, registrations and mutations skip the
    /// WAL (which is exactly what replay needs), afterwards every
    /// mutation is logged before it is acknowledged.
    pub(crate) durability: OnceLock<Arc<Durability>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close admission and drain whatever is queued, so the
        // dispatcher thread exits and every outstanding ticket reaches
        // a terminal outcome. Idempotent after an explicit shutdown.
        self.sessions.shutdown(&self.shared);
    }
}

/// A query resolved against the catalog and canonicalised, ready to
/// probe the cache or execute. Holds the dataset entry `Arc` — an
/// immutable snapshot — so a queued ticket observes a consistent
/// version no matter what mutations land while it waits.
#[derive(Debug)]
pub(crate) struct Prepared {
    pub(crate) entry: Arc<DatasetEntry>,
    pub(crate) key: CacheKey,
    pub(crate) dims: Vec<usize>,
    pub(crate) max_mask: u32,
    pub(crate) limit: Option<usize>,
}

impl Engine {
    /// An engine with default configuration (all cores, 8 MiB result
    /// cache).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(cfg: EngineConfig) -> Self {
        Self::with_clock(cfg, Arc::new(MonotonicClock::new()))
    }

    /// An engine with explicit configuration and time source. The
    /// clock drives the feedback loop's runtime measurements and refit
    /// cadence; hand in a [`ManualClock`](crate::ManualClock) to test
    /// adaptive behaviour deterministically.
    pub fn with_clock(cfg: EngineConfig, clock: Arc<dyn Clock>) -> Self {
        let threads = if cfg.threads == 0 {
            available_threads()
        } else {
            cfg.threads
        };
        Self::build(cfg, Arc::new(ThreadPool::new(threads)), clock)
    }

    /// An engine sharing an existing pool (e.g. with a surrounding
    /// application that also runs parallel work).
    pub fn with_pool(cfg: EngineConfig, pool: Arc<ThreadPool>) -> Self {
        Self::build(cfg, pool, Arc::new(MonotonicClock::new()))
    }

    /// Opens (or creates) a **durable** engine rooted at `dir`:
    /// recovers every dataset from its snapshot + write-ahead log,
    /// truncates torn WAL tails, quarantines datasets with real
    /// corruption (the engine still boots and serves the healthy
    /// ones), warms the planner from the last persisted feedback fit,
    /// and from then on makes every registration and mutation durable
    /// before acknowledging it. The report says what recovery found.
    ///
    /// See [`crate::recovery`] for the durability contract and the
    /// corruption taxonomy.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        cfg: EngineConfig,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        Self::open_durable_with_io(dir, cfg, Arc::new(StdIo))
    }

    /// [`open_durable`](Self::open_durable) over an explicit
    /// [`WalIo`] — the fault-injection seam: hand in a
    /// [`MemIo`](skyline_data::persist::MemIo) or a
    /// [`FaultInjector`](skyline_data::persist::FaultInjector) to
    /// exercise crash and corruption schedules deterministically.
    pub fn open_durable_with_io(
        dir: impl AsRef<Path>,
        cfg: EngineConfig,
        io: Arc<dyn WalIo>,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        Self::open_durable_with_options(dir, cfg, io, DurabilityOptions::default())
    }

    /// [`open_durable_with_io`](Self::open_durable_with_io) with
    /// explicit [`DurabilityOptions`] (checkpoint cadence).
    pub fn open_durable_with_options(
        dir: impl AsRef<Path>,
        cfg: EngineConfig,
        io: Arc<dyn WalIo>,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        let engine = Self::with_config(cfg);
        crate::recovery::open(engine, dir.as_ref(), io, opts)
    }

    fn build(cfg: EngineConfig, pool: Arc<ThreadPool>, clock: Arc<dyn Clock>) -> Self {
        let queue_waits = Arc::new(QueueWaitHistograms::new());
        let feedback = cfg.feedback.enabled.then(|| {
            Arc::new(FeedbackLoop::with_waits(
                cfg.feedback,
                Arc::clone(&clock),
                Arc::clone(&queue_waits),
            ))
        });
        let telemetry = cfg
            .telemetry
            .enabled
            .then(|| Arc::new(Telemetry::new(cfg.telemetry.clone(), &queue_waits)));
        let shared = Arc::new(EngineShared {
            pool,
            catalog: Catalog::new(),
            cache: ResultCache::new(cfg.cache_bytes),
            planner: Planner::new(cfg.planner),
            compact_fraction: cfg.compact_fraction,
            shard_debt_factor: cfg.shard_debt_factor,
            feedback,
            clock,
            telemetry,
            queue_waits,
            durability: OnceLock::new(),
        });
        let sessions = Arc::new(SessionRuntime::new(cfg.admission));
        sessions.spawn_worker(&shared);
        let direct = Session::open_internal(&shared, &sessions, SessionOptions::new(""));
        Self {
            shared,
            sessions,
            direct,
        }
    }

    /// Lanes of the shared pool.
    pub fn threads(&self) -> usize {
        self.shared.threads()
    }

    /// Opens a [`Session`] for a tenant: the non-blocking submission
    /// surface with priority classes, quotas, and tickets. See the
    /// [`session`](crate::session) module for the full walkthrough.
    pub fn open_session(&self, options: SessionOptions) -> Session {
        Session::open(&self.shared, &self.sessions, options)
    }

    /// [`open_session`](Self::open_session) with default options:
    /// normal priority, no quotas.
    pub fn session(&self, tenant: impl Into<String>) -> Session {
        self.open_session(SessionOptions::new(tenant))
    }

    /// Closes admission and drains the queue: submissions from this
    /// point are rejected with
    /// [`RejectReason::Shutdown`](crate::RejectReason::Shutdown), while
    /// every ticket already admitted runs to a terminal outcome before
    /// this returns. Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.sessions.shutdown(&self.shared);
    }

    /// Runs one dispatch pass on the calling thread: pops up to
    /// [`AdmissionConfig::max_batch`] tickets (highest priority class
    /// first) and executes them. Returns how many tickets terminated.
    /// The deterministic-dispatch primitive for engines configured with
    /// [`AdmissionConfig::background_dispatcher`] `= false`.
    pub fn pump(&self) -> usize {
        self.sessions.dispatch_batch(&self.shared)
    }

    /// Dispatches until the admission queue is empty, returning how
    /// many tickets terminated.
    pub fn dispatch_now(&self) -> usize {
        let mut n = 0;
        loop {
            let step = self.pump();
            if step == 0 {
                return n;
            }
            n += step;
        }
    }

    /// Admission-queue activity counters.
    pub fn session_stats(&self) -> SessionStats {
        self.sessions.stats()
    }

    /// Registers (or replaces) a dataset under `name`, precomputing
    /// per-dimension statistics and sorted projections. Returns the
    /// dataset's new version. Re-registration invalidates every cached
    /// result of older versions (results a concurrent query already
    /// computed against the *new* version survive).
    /// On a durable engine this panics if the registration snapshot
    /// cannot be persisted; use [`try_register`](Self::try_register)
    /// to handle that failure.
    pub fn register(&self, name: &str, data: Dataset) -> u64 {
        self.try_register(name, data)
            .expect("durable registration failed; use try_register to handle persistence errors")
    }

    /// [`register`](Self::register) returning persistence failures
    /// instead of panicking. On a non-durable engine this never fails.
    /// On a durable engine the snapshot write is the commit point: it
    /// happens (atomically) before the catalog swap, so on `Err` the
    /// previous registration of `name`, if any, is untouched both in
    /// memory and on disk. A successful re-registration also lifts any
    /// quarantine on `name`.
    pub fn try_register(&self, name: &str, data: Dataset) -> Result<u64, EngineError> {
        let shared = &self.shared;
        if let Some(d) = shared.durability.get() {
            d.persist_register(name, &data, None)?;
        }
        let entry = shared.catalog.register(name, data, &shared.pool);
        shared
            .cache
            .purge_dataset_below(entry.id(), entry.version());
        Ok(entry.version())
    }

    /// Registers (or replaces) a dataset under `name` **sharded**: the
    /// rows are additionally split into `k` partitions under
    /// `partitioner`, each with its own cache-resident tile layout,
    /// append segment, and tombstones. Mutations touch exactly the
    /// shards their rows route to, and the planner answers large
    /// queries by computing per-shard skylines and merging them with
    /// witness-point pruning ([`Strategy::Sharded`]). Returns the
    /// dataset's new version.
    pub fn register_sharded(
        &self,
        name: &str,
        data: Dataset,
        k: usize,
        partitioner: PartitionerKind,
    ) -> u64 {
        self.try_register_sharded(name, data, k, partitioner)
            .expect(
            "durable registration failed; use try_register_sharded to handle persistence errors",
        )
    }

    /// [`register_sharded`](Self::register_sharded) returning
    /// persistence failures instead of panicking; semantics otherwise
    /// as [`try_register`](Self::try_register). The shard spec is
    /// persisted in the snapshot, so recovery rebuilds the dataset
    /// sharded the same way.
    pub fn try_register_sharded(
        &self,
        name: &str,
        data: Dataset,
        k: usize,
        partitioner: PartitionerKind,
    ) -> Result<u64, EngineError> {
        let shared = &self.shared;
        if let Some(d) = shared.durability.get() {
            d.persist_register(name, &data, Some((k, partitioner)))?;
        }
        let entry = shared
            .catalog
            .register_sharded(name, data, k, partitioner, &shared.pool);
        shared
            .cache
            .purge_dataset_below(entry.id(), entry.version());
        Ok(entry.version())
    }

    /// Appends `rows` to a registered dataset; equivalent to
    /// [`update_batch`](Self::update_batch) with no deletes.
    pub fn insert(&self, name: &str, rows: &[Vec<f32>]) -> Result<MutationReport, EngineError> {
        self.update_batch(name, rows, &[])
    }

    /// Deletes rows by stable id; equivalent to
    /// [`update_batch`](Self::update_batch) with no inserts.
    pub fn delete(&self, name: &str, ids: &[u32]) -> Result<MutationReport, EngineError> {
        self.update_batch(name, &[], ids)
    }

    /// Applies one mutation batch to a registered dataset: `deletes`
    /// are tombstoned, then `inserts` appended (the report carries
    /// their assigned stable ids). One version bump covers the batch.
    ///
    /// Catalog statistics and sorted projections are patched
    /// incrementally. Cached results are carried across the version:
    /// insert-only batches under the planner's
    /// [`delta_cap`](PlannerConfig::delta_cap) are patched **eagerly**
    /// (the next identical query is a hit); batches with deletes leave
    /// prior results in place for the planner's query-time
    /// [`Strategy::Delta`] — the repair pass then runs only for
    /// subspaces actually queried again. When tombstones exceed
    /// [`EngineConfig::compact_fraction`], the batch compacts the
    /// dataset instead: surviving rows are renumbered and prior cached
    /// results (keyed to the old ids) are invalidated.
    pub fn update_batch(
        &self,
        name: &str,
        inserts: &[Vec<f32>],
        deletes: &[u32],
    ) -> Result<MutationReport, EngineError> {
        let shared = &self.shared;
        let durability = shared.durability.get();
        if let Some(d) = durability {
            d.check_available(name)?;
        }
        if inserts.is_empty() && deletes.is_empty() {
            // An empty batch must not bump the version (that would
            // orphan every cached result for nothing).
            let entry = shared
                .catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
            return Ok(MutationReport {
                version: entry.version(),
                inserted_ids: Vec::new(),
                deleted: 0,
                compacted: false,
                cache_patched: 0,
                cache_dropped: 0,
            });
        }
        let mutate = || match durability {
            Some(d) => {
                // Durable path: the WAL append runs inside the writer
                // critical section, after validation and before any
                // state change — log order is apply order, and a
                // failed append aborts the batch unapplied.
                let mut hook = || d.log_mutation(name, inserts, deletes);
                shared.catalog.mutate_logged(
                    name,
                    inserts,
                    deletes,
                    &shared.pool,
                    shared.compact_fraction,
                    shared.shard_debt_factor,
                    Some(&mut hook),
                )
            }
            None => shared.catalog.mutate_with_shard_policy(
                name,
                inserts,
                deletes,
                &shared.pool,
                shared.compact_fraction,
                shared.shard_debt_factor,
            ),
        };
        // A panic anywhere in the mutation path (a poisoned kernel, an
        // injected fault) must not wedge the dataset: the writer lock
        // recovers from poisoning, and the caller gets a structured
        // error instead of an unwind. State is safe because mutations
        // publish a new entry only at the very end — an unwind midway
        // leaves the previous immutable entry in place.
        let out = match catch_unwind(AssertUnwindSafe(mutate)) {
            Ok(result) => result?,
            Err(_) => return Err(EngineError::Internal),
        };
        let (patched, dropped) = if out.compacted {
            let dropped = shared
                .cache
                .purge_dataset_below(out.entry.id(), out.entry.version());
            (0, dropped)
        } else {
            let (patched, dropped) = shared.patch_cache_forward(&out);
            // Entries older than the delta log's reach can never be
            // patched again; stop them squatting in the budget.
            let horizon = out
                .entry
                .oldest_delta_version()
                .unwrap_or_else(|| out.entry.version());
            let rotated = shared.cache.purge_dataset_below(out.entry.id(), horizon);
            (patched, dropped + rotated)
        };
        let report = MutationReport {
            version: out.entry.version(),
            inserted_ids: out.inserted_ids,
            deleted: out.deleted_ids.len(),
            compacted: out.compacted,
            cache_patched: patched,
            cache_dropped: dropped,
        };
        if let Some(d) = durability {
            if d.wants_checkpoint(name) {
                // Best effort: the batch is already durable in the
                // WAL, so a failed checkpoint costs replay time, not
                // correctness.
                let _ = self.checkpoint(name);
            }
        }
        Ok(report)
    }

    /// Rewrites a durable dataset's snapshot at the current WAL
    /// watermark and resets its log, bounding replay work after a
    /// crash. Runs automatically once a dataset's WAL outgrows
    /// [`DurabilityOptions::checkpoint_wal_bytes`]; call it directly
    /// for an orderly shutdown.
    ///
    /// # Errors
    /// [`EngineError::Persist`] on a non-durable engine or when the
    /// snapshot cannot be written (the WAL is left intact, so nothing
    /// acknowledged is at risk); [`EngineError::DatasetQuarantined`]
    /// or [`EngineError::UnknownDataset`] per the usual gates.
    pub fn checkpoint(&self, name: &str) -> Result<(), EngineError> {
        let d = self
            .shared
            .durability
            .get()
            .ok_or_else(|| EngineError::Persist("engine is not durable".into()))?;
        d.check_available(name)?;
        self.shared
            .catalog
            .with_writer(name, |entry| d.checkpoint(name, entry))
    }

    /// Whether this engine persists its state (built via
    /// [`open_durable`](Self::open_durable)).
    pub fn is_durable(&self) -> bool {
        self.shared.durability.get().is_some()
    }

    /// Datasets currently quarantined by recovery, as sorted
    /// `(name, reason)` pairs. Always empty on a non-durable engine.
    /// Quarantined datasets reject queries and mutations with
    /// [`EngineError::DatasetQuarantined`] until re-registered.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.shared
            .durability
            .get()
            .map(|d| d.quarantined())
            .unwrap_or_default()
    }

    pub(crate) fn shared(&self) -> &Arc<EngineShared> {
        &self.shared
    }

    /// Removes a dataset; its cached results are dropped too. Returns
    /// whether it was registered.
    pub fn evict(&self, name: &str) -> bool {
        match self.shared.catalog.evict(name) {
            Some(entry) => {
                self.shared.cache.purge_dataset(entry.id());
                true
            }
            None => false,
        }
    }

    /// The catalog entry for `name`, if registered.
    pub fn dataset(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.shared.catalog.get(name)
    }

    /// Names, versions, and live cardinalities of all registered
    /// datasets.
    pub fn datasets(&self) -> Vec<(String, u64, usize)> {
        self.shared.catalog.list()
    }

    /// Cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The feedback loop, when enabled. Tests and tooling use it to
    /// inject synthetic observations and inspect the aggregates.
    pub fn feedback(&self) -> Option<&Arc<FeedbackLoop>> {
        self.shared.feedback.as_ref()
    }

    /// Feedback activity counters; all zero when feedback is disabled.
    pub fn feedback_stats(&self) -> FeedbackStats {
        self.shared
            .feedback
            .as_ref()
            .map(|fb| fb.stats())
            .unwrap_or_default()
    }

    /// Forces a feedback refit right now, ignoring the cadence.
    /// Returns whether the planner's live thresholds changed; always
    /// `false` when feedback is disabled.
    pub fn refit_feedback(&self) -> bool {
        let changed = self
            .shared
            .feedback
            .as_ref()
            .is_some_and(|fb| fb.refit_now(&self.shared.planner));
        if changed {
            self.shared.persist_planner_fit();
        }
        changed
    }

    /// A consistent snapshot of the planner's live thresholds (the
    /// fitted config once feedback has installed one).
    pub fn planner_config(&self) -> Arc<PlannerConfig> {
        self.shared.planner.config()
    }

    /// A merged snapshot of every telemetry instrument — query latency,
    /// per-class queue waits, per-algorithm dominance-test counters,
    /// session activity — plus the derived `cache.*` and `feedback.*`
    /// families. Empty when telemetry is disabled;
    /// [`MetricsSnapshot::render`] turns it into the text exposition.
    pub fn metrics(&self) -> MetricsSnapshot {
        let Some(tel) = &self.shared.telemetry else {
            return MetricsSnapshot::default();
        };
        let mut snap = tel.registry().snapshot();
        let c = self.cache_stats();
        snap.push_counter("cache.hits", &[], c.hits);
        snap.push_counter("cache.misses", &[], c.misses);
        snap.push_counter("cache.insertions", &[], c.insertions);
        snap.push_counter("cache.evictions", &[], c.evictions);
        snap.push_counter("cache.invalidations", &[], c.invalidations);
        snap.push_counter("cache.patches", &[], c.patches);
        snap.push_gauge("cache.entries", &[], c.entries as f64);
        snap.push_gauge("cache.bytes", &[], c.bytes as f64);
        snap.push_gauge("cache.budget_bytes", &[], c.budget_bytes as f64);
        let f = self.feedback_stats();
        snap.push_counter("feedback.observations", &[], f.observations);
        snap.push_counter("feedback.refits", &[], f.refits);
        snap.push_counter("feedback.installs", &[], f.installs);
        snap.push_counter("feedback.explorations", &[], f.explorations);
        snap.samples
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snap
    }

    /// The engine's live metrics registry, for embedders that want
    /// their own instruments in the same exposition: a serving tier
    /// registers its per-connection counters and request histograms
    /// here, and one [`metrics`](Self::metrics) snapshot (and its
    /// [`MetricsSnapshot::render`] text) covers the whole process.
    /// `None` when telemetry is disabled.
    pub fn metrics_registry(&self) -> Option<Arc<MetricsRegistry>> {
        self.shared
            .telemetry
            .as_ref()
            .map(|tel| tel.registry_handle())
    }

    /// Removes and returns every trace retained by the slow-query ring
    /// (queries whose end-to-end latency met
    /// [`TelemetryConfig::slow_query_threshold`]), oldest first. Empty
    /// when telemetry is disabled.
    pub fn slow_queries(&self) -> Vec<Arc<QueryTrace>> {
        self.shared
            .telemetry
            .as_ref()
            .map(|tel| tel.slow_log().drain())
            .unwrap_or_default()
    }

    /// Executes one query and returns its result **with** the full
    /// execution trace: per-stage spans timed on the engine clock, the
    /// planner's decision and rejected candidates, and per-span
    /// dominance-test counts.
    ///
    /// The query runs exactly as [`execute`](Self::execute) runs it
    /// (same session, cache, and scheduling), so the trace reflects
    /// production behaviour rather than an instrumented replay.
    ///
    /// # Errors
    /// [`EngineError::TelemetryDisabled`] when the engine was built
    /// with [`TelemetryConfig::enabled`] `= false`, plus anything
    /// [`execute`](Self::execute) can fail with.
    pub fn explain_analyze(
        &self,
        query: &SkylineQuery,
    ) -> Result<(QueryResult, Arc<QueryTrace>), EngineError> {
        if self.shared.telemetry.is_none() {
            return Err(EngineError::TelemetryDisabled);
        }
        let ticket = self.submit_direct_blocking(query)?;
        let result = ticket.wait()?;
        let trace = ticket
            .trace()
            .expect("telemetry is enabled: successful tickets carry a trace");
        Ok((result, trace))
    }

    /// Plans a query without executing it (introspection; no cache
    /// probe beyond the prior-version lookup, no side effects beyond
    /// the planner's sampling pass).
    pub fn plan(&self, query: &SkylineQuery) -> Result<QueryPlan, EngineError> {
        let prepared = self.shared.prepare(query)?;
        Ok(self.shared.plan_prepared(&prepared, self.threads()))
    }

    /// Executes one query and blocks for its result.
    ///
    /// A thin submit-and-wait wrapper over the [session
    /// layer](crate::session): the query goes through the engine's own
    /// session (anonymous tenant, normal priority, no quotas), so cache
    /// hits are answered at submission and misses take one trip through
    /// the admission queue. Equivalent to
    /// `engine.session("").submit(query)?.wait()`.
    pub fn execute(&self, query: &SkylineQuery) -> Result<QueryResult, EngineError> {
        self.submit_direct_blocking(query)?.wait()
    }

    /// Submits through the engine's own session, absorbing transient
    /// `QueueFull` backpressure by helping drain the queue — the
    /// blocking wrappers must not surface a rejection the caller never
    /// opted into. (Quota rejections cannot occur: the direct session
    /// bypasses quota enforcement, even if a user session caps the
    /// same tenant name. Shutdown still surfaces.)
    fn submit_direct_blocking(
        &self,
        query: &SkylineQuery,
    ) -> Result<crate::session::QueryTicket, EngineError> {
        loop {
            match self.direct.submit(query) {
                Ok(ticket) => return Ok(ticket),
                Err(EngineError::Rejected(crate::error::RejectReason::QueueFull { .. })) => {
                    if self.pump() == 0 {
                        // The dispatcher owns everything queued; give
                        // it a moment to free a slot.
                        std::thread::yield_now();
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Executes a batch of queries and returns per-query results in
    /// order: every query is submitted through the engine's own session
    /// first, then the tickets are awaited together.
    ///
    /// Scheduling (inside the dispatcher's batch core): cache hits are
    /// answered at submission; misses whose plan is sequential
    /// (BNL/SFS/BSkyTree/min-scan/delta) run **next to each other**,
    /// one query per lane, so the pool is saturated by inter-query
    /// parallelism; misses with parallel plans (Q-Flow/Hybrid) then run
    /// one at a time, each spanning the whole pool. Either way the pool
    /// is never oversubscribed.
    ///
    /// Each query is planned once and probes the cache once for the
    /// effectiveness counters; the extra de-duplication re-probe before
    /// a plan runs (an identical earlier query in the batch may have
    /// filled the cache already) is uncounted.
    pub fn execute_batch(&self, queries: &[SkylineQuery]) -> Vec<Result<QueryResult, EngineError>> {
        // Blocking submission: a batch larger than the queue capacity
        // drains itself instead of partially failing.
        let tickets: Vec<Result<crate::session::QueryTicket, EngineError>> = queries
            .iter()
            .map(|q| self.submit_direct_blocking(q))
            .collect();
        tickets
            .into_iter()
            .map(|ticket| ticket.and_then(|t| t.wait()))
            .collect()
    }
}

impl EngineShared {
    /// Lanes of the shared pool.
    pub(crate) fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Carries cached results of the pre-mutation version forward to
    /// the new one. Insert-only deltas are cheap (the batch is offered
    /// to the cached skyline only, through the tile kernels when it is
    /// large); anything involving deletes is left at the old version
    /// for the query-time delta strategy, so the repair scan runs only
    /// for subspaces that are queried again.
    pub(crate) fn patch_cache_forward(&self, out: &MutationOutcome) -> (usize, usize) {
        let entry = &out.entry;
        let delta = out.inserted_ids.len() + out.deleted_ids.len();
        if delta > self.planner.config().delta_cap {
            // Cumulative deltas only grow, so no future query can
            // patch across this batch either: drop every prior entry
            // now instead of letting it squat until the log rotates.
            let dropped = self.cache.purge_dataset_below(entry.id(), entry.version());
            return (0, dropped);
        }
        if !out.deleted_ids.is_empty() {
            // Deletes defer to Strategy::Delta: the repair pass over
            // the live rows then runs only for subspaces that are
            // actually queried again. The old-version entries stay.
            return (0, 0);
        }
        let stale = self.cache.take_dataset_version(entry.id(), out.old_version);
        let mut patched = 0usize;
        for (key, value) in stale {
            let dims = mask_dims(key.dim_mask);
            let mut sky = (*value).clone();
            maintain::insert_points(
                entry.as_ref(),
                &mut sky,
                &out.inserted_ids,
                &dims,
                key.max_mask,
            );
            self.cache.insert_patched(
                CacheKey {
                    version: entry.version(),
                    ..key
                },
                CachedValue::ids_only(Arc::new(sky)),
            );
            patched += 1;
        }
        (patched, 0)
    }

    /// Feeds one completed query into the feedback loop and gives the
    /// refitter its time-gated chance to run.
    fn observe(&self, obs: Observation) {
        if let Some(fb) = &self.feedback {
            fb.record(obs);
            self.refit_tick(fb);
        }
    }

    /// Gives the refitter its time-gated chance to run, persisting the
    /// freshly installed thresholds when it changes them (so a durable
    /// engine restarts with a warm planner).
    fn refit_tick(&self, fb: &FeedbackLoop) {
        if fb.maybe_refit(&self.planner) {
            self.persist_planner_fit();
        }
    }

    /// Best-effort append of the planner's current thresholds to the
    /// durable feedback log; a no-op on non-durable engines. Never in
    /// a mutation's acknowledgement path.
    pub(crate) fn persist_planner_fit(&self) {
        if let Some(d) = self.durability.get() {
            d.log_planner_fit(&self.planner.config());
        }
    }

    /// Executes one dispatch batch of admitted tickets against the
    /// shared pool — the batch core behind both
    /// [`Engine::execute_batch`] and the session dispatcher.
    ///
    /// Per ticket: cancellation and deadline are checked **at dequeue**
    /// (an expired or cancelled ticket terminates without planning),
    /// then an uncounted de-duplication cache probe (the counted probe
    /// ran at submission), then the plan. Sequential plans run one per
    /// pool lane, parallel plans span the whole pool afterwards; both
    /// re-check cancellation/deadline **between the plan and the run**.
    ///
    /// With `steal` set, the loop over pool-wide parallel plans
    /// re-checks the admission queues before each one and runs any
    /// ticket whose effective class is strictly higher first — a High
    /// submission arriving (or a Low one aging up) mid-batch waits for
    /// at most one plan, not the whole batch. Stolen sub-batches run
    /// with `steal` off, so the pre-emption nests at most once.
    pub(crate) fn run_ticket_batch(
        &self,
        runtime: &SessionRuntime,
        batch: Vec<Arc<TicketState>>,
        steal: bool,
    ) {
        type Planned = (
            Arc<TicketState>,
            QueryPlan,
            Duration,
            Option<Arc<ActiveTrace>>,
        );
        let mut seq: Vec<Planned> = Vec::new();
        let mut par: Vec<Planned> = Vec::new();
        for ticket in batch {
            let wait = self.clock.now().saturating_sub(ticket.submitted_at);
            if let Some(outcome) = self.preflight(&ticket) {
                self.complete_ticket(runtime, &ticket, outcome, wait, None);
                continue;
            }
            let trace = self.begin_trace(&ticket, wait);
            if let Some(full) = self.cache.get_uncounted(&ticket.prepared.key) {
                let hit_started = self.clock.now();
                let hit = self.hit_result(
                    &ticket.prepared,
                    full,
                    Instant::now(),
                    self.clock_now(),
                    wait,
                );
                if let Some(tr) = &trace {
                    tr.add_span(
                        SpanKind::CacheHit,
                        hit_started,
                        self.clock.now().saturating_sub(hit_started),
                        0,
                    );
                }
                let sealed = self.seal_trace(trace, &ticket, &hit, wait);
                self.complete_ticket(runtime, &ticket, Ok(hit), wait, sealed);
                continue;
            }
            if let Some(hit) = self.try_ancestor(
                &ticket.prepared,
                Instant::now(),
                self.clock_now(),
                wait,
                trace.as_ref(),
            ) {
                let sealed = self.seal_trace(trace, &ticket, &hit, wait);
                self.complete_ticket(runtime, &ticket, Ok(hit), wait, sealed);
                continue;
            }
            let plan_started = self.clock.now();
            let plan = self.plan_prepared(&ticket.prepared, self.threads());
            if let Some(tr) = &trace {
                tr.add_span(
                    SpanKind::Plan,
                    plan_started,
                    self.clock.now().saturating_sub(plan_started),
                    0,
                );
            }
            let parallel = matches!(plan.strategy, Strategy::Algorithm(a) if a.is_parallel())
                || matches!(plan.strategy, Strategy::Sharded { .. });
            if parallel {
                par.push((ticket, plan, wait, trace));
            } else {
                seq.push((ticket, plan, wait, trace));
            }
        }

        // Sequential plans: a lone one runs directly on the shared pool
        // (the single-query fast path); several run one per lane, each
        // on a single-threaded pool, so total concurrency stays at
        // `threads()`.
        if seq.len() == 1 {
            let (ticket, plan, wait, trace) = seq.pop().expect("len checked");
            self.finish_ticket(runtime, &ticket, plan, wait, &self.pool, trace);
        } else if !seq.is_empty() {
            let mut slots = seq;
            par_chunks_mut(&self.pool, &mut slots, 1, |_, chunk| {
                let lane_pool = ThreadPool::new(1);
                for (ticket, plan, wait, trace) in chunk.iter_mut() {
                    self.finish_ticket(
                        runtime,
                        ticket,
                        plan.clone(),
                        *wait,
                        &lane_pool,
                        trace.clone(),
                    );
                }
            });
        }

        // Parallel plans: whole pool, one at a time, reusing the plan
        // from classification.
        for (ticket, plan, wait, trace) in par {
            if steal {
                let higher = runtime.pop_higher(self.clock.now(), ticket.priority);
                if !higher.is_empty() {
                    runtime.run_batch_guarded(self, higher, false);
                }
            }
            self.finish_ticket(runtime, &ticket, plan, wait, &self.pool, trace);
        }
    }

    /// Starts a trace for an admitted ticket (telemetry enabled only),
    /// seeded with its admission-wait span.
    fn begin_trace(&self, ticket: &TicketState, wait: Duration) -> Option<Arc<ActiveTrace>> {
        self.telemetry.as_ref().map(|_| {
            let tr = Arc::new(ActiveTrace::new(Arc::clone(&self.clock)));
            tr.add_span(SpanKind::AdmissionWait, ticket.submitted_at, wait, 0);
            tr
        })
    }

    /// Seals an active trace against the finished result.
    fn seal_trace(
        &self,
        trace: Option<Arc<ActiveTrace>>,
        ticket: &TicketState,
        result: &QueryResult,
        queue_wait: Duration,
    ) -> Option<Arc<QueryTrace>> {
        trace.map(|tr| {
            tr.finish(
                ticket.id,
                ticket.prepared.entry.name(),
                PlanKind::from(&result.plan.strategy).name(),
                result.plan.reason,
                result.plan.candidates.clone(),
                queue_wait,
                self.clock.now().saturating_sub(ticket.submitted_at),
                result.cache_hit,
            )
        })
    }

    /// Terminates a ticket: records its queue wait and (on success) the
    /// completion counters, end-to-end latency, and slow-log offer,
    /// then publishes the outcome and trace to the waiter.
    fn complete_ticket(
        &self,
        runtime: &SessionRuntime,
        ticket: &TicketState,
        outcome: Result<QueryResult, EngineError>,
        queue_wait: Duration,
        trace: Option<Arc<QueryTrace>>,
    ) {
        if outcome.is_ok() {
            self.queue_waits.record(ticket.priority, queue_wait);
            if let Some(tel) = &self.telemetry {
                tel.on_completed(ticket.priority);
                tel.record_latency(self.clock.now().saturating_sub(ticket.submitted_at));
                if let Some(tr) = &trace {
                    tel.slow_log().offer(tr);
                }
            }
        }
        runtime.complete(ticket, outcome, queue_wait, trace);
    }

    /// Terminal outcome for a ticket that must not run: cancelled, or
    /// past its deadline on the engine clock.
    fn preflight(&self, ticket: &TicketState) -> Option<Result<QueryResult, EngineError>> {
        if ticket.cancelled.load(Ordering::SeqCst) {
            return Some(Err(EngineError::Cancelled));
        }
        if ticket.expired(self.clock.now()) {
            return Some(Err(EngineError::DeadlineExceeded));
        }
        None
    }

    /// Runs one planned ticket on `pool` after the between-phases
    /// cancellation/deadline re-check, with an uncounted de-duplication
    /// probe first.
    fn finish_ticket(
        &self,
        runtime: &SessionRuntime,
        ticket: &TicketState,
        plan: QueryPlan,
        queue_wait: Duration,
        pool: &ThreadPool,
        trace: Option<Arc<ActiveTrace>>,
    ) {
        if let Some(outcome) = self.preflight(ticket) {
            self.complete_ticket(runtime, ticket, outcome, queue_wait, None);
            return;
        }
        let clock_started = self.clock_now();
        let outcome = match self.cache.get_uncounted(&ticket.prepared.key) {
            Some(full) => {
                let hit_started = self.clock.now();
                let hit = self.hit_result(
                    &ticket.prepared,
                    full,
                    Instant::now(),
                    clock_started,
                    queue_wait,
                );
                if let Some(tr) = &trace {
                    tr.add_span(
                        SpanKind::CacheHit,
                        hit_started,
                        self.clock.now().saturating_sub(hit_started),
                        0,
                    );
                }
                hit
            }
            None => match self.try_ancestor(
                &ticket.prepared,
                Instant::now(),
                clock_started,
                queue_wait,
                trace.as_ref(),
            ) {
                Some(hit) => hit,
                None => self.run_plan(&ticket.prepared, plan, pool, queue_wait, trace.as_ref()),
            },
        };
        let sealed = self.seal_trace(trace, ticket, &outcome, queue_wait);
        self.complete_ticket(runtime, ticket, Ok(outcome), queue_wait, sealed);
    }

    /// Resolves the dataset and canonicalises the query.
    pub(crate) fn prepare(&self, query: &SkylineQuery) -> Result<Prepared, EngineError> {
        // Quarantine outranks "unknown": a corrupt dataset was evicted
        // from the catalog, but callers should hear *why* it is gone.
        if let Some(d) = self.durability.get() {
            d.check_available(query.dataset())?;
        }
        let entry = self
            .catalog
            .get(query.dataset())
            .ok_or_else(|| EngineError::UnknownDataset(query.dataset().to_string()))?;
        let (dims, max_mask) = query.canonicalize(entry.dims())?;
        let dim_mask = dims.iter().fold(0u32, |m, &d| m | (1 << d));
        let key = CacheKey {
            dataset_id: entry.id(),
            version: entry.version(),
            dim_mask,
            max_mask,
            kind: query.query_kind(),
        };
        Ok(Prepared {
            entry,
            key,
            dims,
            max_mask,
            limit: query.result_limit(),
        })
    }

    /// Plans a prepared query, offering the planner any prior-version
    /// cached result that the dataset's delta log can still reach and
    /// any same-version cached **subspace** skyline usable as a
    /// superspace pre-filter.
    pub(crate) fn plan_prepared(&self, prepared: &Prepared, threads: usize) -> QueryPlan {
        let kind = prepared.key.kind;
        // A cached subspace skyline at this exact version can pre-filter
        // the superspace scan; cap the seed size so the filter's
        // O(n × seed) worst case stays well under the main computation.
        // Skyline only: pruned rows may still carry non-zero counts.
        let seed = if kind.is_skyline() {
            self.cache
                .find_superspace_seed(&prepared.key)
                .filter(|&(_, len)| len > 0 && len <= 4096)
                .map(|(dim_mask, len)| SuperspaceSeed { dim_mask, len })
        } else {
            None
        };
        // Only pay the prior-version cache scan when a delta could
        // exist at all: unmutated datasets (the common case) have an
        // empty log. Skyline only: the maintenance kernels patch
        // membership, not dominator counts.
        let prior = if !kind.is_skyline() || prepared.entry.oldest_delta_version().is_none() {
            None
        } else {
            self.cache.find_prior(&prepared.key).and_then(|(ver, len)| {
                let delta = prepared.entry.delta_since(ver)?;
                let inserted = prepared.entry.inserted_since(delta.bound).len();
                Some(PriorResult {
                    from_version: ver,
                    len,
                    inserted,
                    deleted: delta.deleted.len(),
                })
            })
        };
        self.planner.plan_kind(
            &prepared.entry,
            &prepared.dims,
            prepared.max_mask,
            threads,
            kind,
            prior,
            seed,
        )
    }

    /// A reading of the feedback clock, when feedback is enabled —
    /// taken at the start of a path whose runtime will be observed.
    pub(crate) fn clock_now(&self) -> Option<Duration> {
        self.feedback.as_ref().map(|fb| fb.clock().now())
    }

    /// Counted cache probe; on a hit builds the full result without
    /// planning.
    pub(crate) fn probe(
        &self,
        prepared: &Prepared,
        started: Instant,
        clock_started: Option<Duration>,
    ) -> Option<QueryResult> {
        let value = self.cache.get(&prepared.key)?;
        Some(self.hit_result(prepared, value, started, clock_started, Duration::ZERO))
    }

    /// Wraps a cached value as a hit result.
    fn hit_result(
        &self,
        prepared: &Prepared,
        value: CachedValue,
        started: Instant,
        clock_started: Option<Duration>,
        queue_wait: Duration,
    ) -> QueryResult {
        // Hits are observed too (the feedback report shows how much of
        // the workload never reaches an algorithm). Like run_plan, the
        // observed runtime comes off the engine's clock — never
        // `Instant` — so `ManualClock` tests stay deterministic;
        // `Cached` buckets never participate in threshold fits.
        if let (Some(fb), Some(t0)) = (&self.feedback, clock_started) {
            self.observe(Observation {
                kind: PlanKind::Cached,
                n: prepared.entry.live_len(),
                d: prepared.dims.len(),
                max_mask: prepared.max_mask,
                sample_skyline_frac: None,
                alpha: None,
                runtime: fb.clock().now().saturating_sub(t0),
                queue_wait,
            });
        }
        QueryResult {
            full: value.ids,
            counts: value.counts,
            limit: prepared.limit,
            plan: QueryPlan::trivial("").cached(),
            cache_hit: true,
            stats: None,
            shard_merge: None,
            dataset_version: prepared.entry.version(),
            elapsed: started.elapsed(),
        }
    }

    /// Serves a query from a cached **ancestor** entry when one exists:
    /// a k'-skyband (k' ≥ k) with stored dominator counts answers any
    /// smaller skyband — and the skyline itself (count = 0) — by
    /// filtering those counts, and a cached top-k' dominating answers
    /// any smaller top-k by truncation. No dataset scan happens; the
    /// derivation is a pass over the cached vectors. The derived result
    /// is inserted at its own key so the next identical query is an
    /// exact hit, and the work lands on the trace as a
    /// [`SpanKind::CacheAncestor`] span.
    fn try_ancestor(
        &self,
        prepared: &Prepared,
        started: Instant,
        clock_started: Option<Duration>,
        queue_wait: Duration,
        trace: Option<&Arc<ActiveTrace>>,
    ) -> Option<QueryResult> {
        let kind = prepared.key.kind;
        if matches!(
            kind,
            QueryKind::Skyband { k: 0 } | QueryKind::TopKDominating { k: 0 }
        ) {
            // Definitionally empty; let the trivial plan answer it.
            return None;
        }
        let (_, anc) = self.cache.find_ancestor(&prepared.key)?;
        let span_t0 = trace.map(|_| self.clock.now());
        let (value, reason) = match kind {
            QueryKind::Skyline | QueryKind::Skyband { .. } => {
                let counts = anc.counts.as_ref()?;
                debug_assert_eq!(counts.len(), anc.ids.len());
                let keep_below = kind.k();
                let mut ids = Vec::new();
                let mut kept = Vec::new();
                for (&id, &c) in anc.ids.iter().zip(counts.iter()) {
                    if c < keep_below {
                        ids.push(id);
                        kept.push(c);
                    }
                }
                let value = CachedValue {
                    ids: Arc::new(ids),
                    counts: (!kind.is_skyline()).then(|| Arc::new(kept)),
                };
                (value, "skyband ancestor cache hit")
            }
            QueryKind::TopKDominating { k } => {
                let take = (k as usize).min(anc.ids.len());
                let value = CachedValue {
                    ids: Arc::new(anc.ids[..take].to_vec()),
                    counts: anc
                        .counts
                        .as_ref()
                        .map(|c| Arc::new(c[..take.min(c.len())].to_vec())),
                };
                (value, "top-k ancestor cache hit")
            }
        };
        self.cache.insert(prepared.key, value.clone());
        if let (Some(tr), Some(t0)) = (trace, span_t0) {
            tr.add_span(
                SpanKind::CacheAncestor,
                t0,
                self.clock.now().saturating_sub(t0),
                0,
            );
        }
        let mut hit = self.hit_result(prepared, value, started, clock_started, queue_wait);
        hit.plan.reason = reason;
        Some(hit)
    }

    /// Applies a `Strategy::Delta` plan: seeds from the prior cached
    /// skyline and replays the accumulated delta through the
    /// maintenance kernels. `None` when the prior result or the delta
    /// window vanished between planning and execution.
    fn run_delta(&self, prepared: &Prepared, from_version: u64) -> Option<Vec<u32>> {
        let entry = &prepared.entry;
        let prior = self
            .cache
            .get_uncounted(&CacheKey {
                version: from_version,
                ..prepared.key
            })?
            .ids;
        let delta = entry.delta_since(from_version)?;
        let inserted = entry.inserted_since(delta.bound);
        // Rows live now and below the bound are exactly the prior
        // version's survivors — the live set the repair scan needs.
        let survivors = entry
            .live_ids()
            .iter()
            .copied()
            .take_while(|&id| id < delta.bound);
        Some(maintain::apply_delta(
            entry.as_ref(),
            survivors,
            &prior,
            &delta.deleted,
            inserted,
            &prepared.dims,
            prepared.max_mask,
        ))
    }

    /// Runs an already-made plan on `pool` (the shared pool, or a
    /// lane-local single-threaded pool inside a dispatch batch) and
    /// fills the cache with the result. `queue_wait` is the time the
    /// ticket spent in the admission queue — recorded on the feedback
    /// observation *separately* from the compute runtime, so threshold
    /// fits are never polluted by queueing delay.
    fn run_plan(
        &self,
        prepared: &Prepared,
        mut plan: QueryPlan,
        pool: &ThreadPool,
        queue_wait: Duration,
        trace: Option<&Arc<ActiveTrace>>,
    ) -> QueryResult {
        let started = Instant::now();
        // Runtime observed for the feedback loop is measured on the
        // engine's clock (not `Instant`), so a `ManualClock` makes the
        // recorded runtimes — and therefore every refit decision —
        // fully deterministic in tests.
        let clock_started = self.feedback.as_ref().map(|fb| fb.clock().now());
        if let Some(tr) = trace {
            // Give the algorithm a query-scoped dominance tally and the
            // span sink, and re-base the trace's phase mark so the
            // first phase is not charged for engine-side time.
            plan.config.dt_counters = Some(Arc::new(LaneCounters::new(pool.threads())));
            plan.config.span_sink = Some(Arc::clone(tr) as Arc<dyn SpanSink>);
            tr.set_mark();
        }
        let exec_started = trace.map(|_| self.clock.now());
        let entry = &prepared.entry;
        let kind = prepared.key.kind;
        let mut shard_merge = None;
        let mut counts: Option<Vec<u32>> = None;
        let (indices, stats) = match &plan.strategy {
            Strategy::Cached => unreachable!("planner never emits Cached"),
            Strategy::Trivial => {
                // No discriminating dimension: nothing strictly
                // dominates anything, so every live row is in the
                // skyline (and in any k ≥ 1 skyband, with count 0),
                // and top-k dominating is the first k live rows with
                // score 0. Empty dataset or k = 0: empty.
                let ids: Vec<u32> = if kind.k() == 0 {
                    Vec::new()
                } else if let QueryKind::TopKDominating { k } = kind {
                    entry.live_ids().iter().copied().take(k as usize).collect()
                } else {
                    (**entry.live_ids()).clone()
                };
                if !kind.is_skyline() {
                    counts = Some(vec![0; ids.len()]);
                }
                (ids, None)
            }
            Strategy::MinScan { dim } => {
                let max = prepared.max_mask & (1 << dim) != 0;
                (entry.extreme_rows(*dim, max), None)
            }
            Strategy::Delta { from_version } => match self.run_delta(prepared, *from_version) {
                Some(indices) => (indices, None),
                None => {
                    // The prior entry was evicted (or the log rotated)
                    // between planning and execution: replan without
                    // it. A fresh plan can never be Delta again.
                    let plan =
                        self.planner
                            .plan(entry, &prepared.dims, prepared.max_mask, pool.threads());
                    return self.run_plan(prepared, plan, pool, queue_wait, trace);
                }
            },
            Strategy::Sharded { .. } => {
                let store = Arc::clone(
                    entry
                        .sharded()
                        .expect("planner emits Sharded only for entries with a store attached"),
                );
                if let QueryKind::Skyband { k } = kind {
                    let (pairs, stats, merge) =
                        self.run_sharded_skyband(prepared, &plan, k, &store, pool, trace);
                    shard_merge = Some(merge);
                    let (ids, cnts): (Vec<u32>, Vec<u32>) = pairs.into_iter().unzip();
                    counts = Some(cnts);
                    (ids, Some(stats))
                } else {
                    let (indices, stats, merge) =
                        self.run_sharded(prepared, &plan, &store, pool, trace);
                    shard_merge = Some(merge);
                    (indices, Some(stats))
                }
            }
            Strategy::Algorithm(algo) if !kind.is_skyline() => {
                // Counting kinds: fold the live rows onto the effective
                // dimensions and run the sum-sorted counting kernel —
                // one SFS-shaped pass, whatever the nominal algorithm.
                let exec_t0 = trace.map(|_| self.clock.now());
                let dims = &plan.effective_dims;
                let width = dims.len();
                let live = Arc::clone(entry.live_ids());
                let mut rows = Vec::with_capacity(live.len() * width);
                for &id in live.iter() {
                    let src = entry.point(id);
                    for &c in dims {
                        rows.push(flip_pref(src[c], prepared.max_mask & (1 << c) != 0));
                    }
                }
                let mut dts = 0u64;
                let pairs = match kind {
                    QueryKind::Skyband { k } => skyband_counts(&rows, width, k, &mut dts),
                    QueryKind::TopKDominating { k } => top_k_dominating(&rows, width, k, &mut dts),
                    QueryKind::Skyline => unreachable!("guarded by the match arm"),
                };
                let mut ids = Vec::with_capacity(pairs.len());
                let mut cnts = Vec::with_capacity(pairs.len());
                for (pos, c) in pairs {
                    ids.push(live[pos as usize]);
                    cnts.push(c);
                }
                if let (Some(tr), Some(t0)) = (trace, exec_t0) {
                    tr.add_span(
                        SpanKind::Execute,
                        t0,
                        self.clock.now().saturating_sub(t0),
                        dts,
                    );
                }
                if let Some(tel) = &self.telemetry {
                    tel.record_dominance(*algo, dts);
                }
                counts = Some(cnts);
                let stats = RunStats {
                    dominance_tests: dts,
                    skyline_size: ids.len(),
                    ..RunStats::default()
                };
                (ids, Some(stats))
            }
            Strategy::Algorithm(algo) => {
                // A cached same-version subspace skyline (the planner's
                // superspace seed) pre-filters the input: rows strictly
                // dominated by a member on the query dimensions cannot
                // be in the skyline and never reach the algorithm.
                let seeded = plan.superspace_seed.and_then(|seed| {
                    self.superspace_prefilter(prepared, &plan.effective_dims, seed.dim_mask, trace)
                });
                let (indices, stats) = match seeded {
                    Some((view, kept, seed_dts)) => {
                        let result = algo.run(&view, pool, &plan.config);
                        let indices = result.indices.iter().map(|&i| kept[i as usize]).collect();
                        let mut stats = result.stats;
                        // The filter's tests are part of this query's
                        // work: keep the stats equal to the trace's
                        // span-summed total.
                        stats.dominance_tests += seed_dts;
                        (indices, stats)
                    }
                    None => {
                        let (view, id_map) = self.algorithm_input(
                            entry,
                            &plan.effective_dims,
                            prepared.max_mask,
                            pool,
                        );
                        let result = match &view {
                            Some(projected) => algo.run(projected, pool, &plan.config),
                            None => algo.run(entry.base_data(), pool, &plan.config),
                        };
                        let indices = match id_map {
                            // Positions in the materialized live view map
                            // back to stable ids; `live` ascending keeps
                            // order.
                            Some(live) => {
                                result.indices.iter().map(|&i| live[i as usize]).collect()
                            }
                            None => result.indices,
                        };
                        (indices, result.stats)
                    }
                };
                if let Some(tel) = &self.telemetry {
                    tel.record_dominance(*algo, stats.dominance_tests);
                }
                (indices, Some(stats))
            }
        };

        if let (Some(tr), Some(t0)) = (trace, exec_started) {
            // Algorithms stream their own phase spans through the sink;
            // the non-algorithmic strategies get one covering span here.
            let kind = match &plan.strategy {
                Strategy::Trivial | Strategy::MinScan { .. } => Some(SpanKind::Execute),
                Strategy::Delta { .. } => Some(SpanKind::CachePatch),
                _ => None,
            };
            if let Some(kind) = kind {
                tr.add_span(kind, t0, self.clock.now().saturating_sub(t0), 0);
            }
        }

        // Feedback observations fit the planner's *skyline* thresholds;
        // counting-kind runtimes would pollute those buckets.
        if kind.is_skyline() {
            if let (Some(fb), Some(t0)) = (&self.feedback, clock_started) {
                let runtime = fb.clock().now().saturating_sub(t0);
                let obs =
                    Observation::from_plan(&plan, entry.live_len(), prepared.max_mask, runtime)
                        .queued(queue_wait);
                fb.record(obs);
                self.refit_tick(fb);
            }
        }

        let full = Arc::new(indices);
        let counts = counts.map(Arc::new);
        // Don't cache results for a version that was replaced or
        // evicted while we computed: versioned keys make such entries
        // unservable, so they would only squat in LRU slots. (Best
        // effort — a purge racing between this check and the insert
        // can still let one dead entry in; LRU pressure reclaims it.)
        let still_current = self
            .catalog
            .get(entry.name())
            .is_some_and(|current| current.version() == entry.version());
        if still_current {
            let insert_started = trace.map(|_| self.clock.now());
            self.cache.insert(
                prepared.key,
                CachedValue {
                    ids: Arc::clone(&full),
                    counts: counts.clone(),
                },
            );
            if let (Some(tr), Some(t0)) = (trace, insert_started) {
                tr.add_span(
                    SpanKind::CacheInsert,
                    t0,
                    self.clock.now().saturating_sub(t0),
                    0,
                );
            }
        }
        QueryResult {
            full,
            counts,
            limit: prepared.limit,
            plan,
            cache_hit: false,
            stats,
            shard_merge,
            dataset_version: entry.version(),
            elapsed: started.elapsed(),
        }
    }

    /// Builds the dataset a plan's algorithm runs on, plus the
    /// position → stable-id map when rows had to be gathered.
    ///
    /// Returns `(None, None)` when the stored base rows can be used
    /// as-is (pristine entry, all dimensions selected, all minimised);
    /// otherwise materializes the live rows projected onto `dims` with
    /// maximised dimensions negated. The id map is `None` whenever
    /// positions already equal stable ids.
    fn algorithm_input(
        &self,
        entry: &Arc<DatasetEntry>,
        dims: &[usize],
        max_mask: u32,
        pool: &ThreadPool,
    ) -> (Option<Dataset>, Option<Arc<Vec<u32>>>) {
        let d = entry.dims();
        let pristine = entry.is_pristine();
        if pristine && dims.len() == d && max_mask == 0 {
            return (None, None);
        }
        let live = Arc::clone(entry.live_ids());
        let n = live.len();
        let width = dims.len();
        let mut values = vec![0.0f32; n * width];
        par_chunks_mut(pool, &mut values, 4096 * width.max(1), |offset, chunk| {
            debug_assert_eq!(offset % width, 0);
            let first_row = offset / width;
            for (k, out) in chunk.chunks_mut(width).enumerate() {
                let src = entry.point(live[first_row + k]);
                for (slot, &c) in out.iter_mut().zip(dims) {
                    let v = src[c];
                    *slot = if max_mask & (1 << c) != 0 { -v } else { v };
                }
            }
        });
        let view =
            Dataset::from_flat(values, width).expect("projection of a valid dataset is valid");
        // In a pristine entry live[i] == i: positions are stable ids.
        (Some(view), if pristine { None } else { Some(live) })
    }

    /// Materializes the live rows surviving the superspace-seed
    /// pre-filter: folded onto `dims`, minus every row strictly
    /// dominated (on the query dimensions) by a member of the cached
    /// subspace skyline `seed_mask` refers to. Such rows cannot be in
    /// the query's skyline, and since the cached members are live rows
    /// themselves, the survivors' skyline equals the full skyline.
    /// Returns `None` when the cached entry was evicted between
    /// planning and execution — the algorithm then runs unfiltered.
    fn superspace_prefilter(
        &self,
        prepared: &Prepared,
        dims: &[usize],
        seed_mask: u32,
        trace: Option<&Arc<ActiveTrace>>,
    ) -> Option<(Dataset, Vec<u32>, u64)> {
        let entry = &prepared.entry;
        let members = self
            .cache
            .get_uncounted(&CacheKey {
                dataset_id: entry.id(),
                version: entry.version(),
                dim_mask: seed_mask,
                max_mask: prepared.max_mask & seed_mask,
                kind: QueryKind::Skyline,
            })?
            .ids;
        if members.is_empty() {
            return None;
        }
        let width = dims.len();
        let started = trace.map(|_| self.clock.now());
        let fold = |row: &[f32], out: &mut [f32]| {
            for (slot, &c) in out.iter_mut().zip(dims) {
                *slot = flip_pref(row[c], prepared.max_mask & (1 << c) != 0);
            }
        };
        let mut filter = TileStore::with_capacity(width, members.len());
        let mut folded = vec![0.0f32; width];
        for &id in members.iter() {
            fold(entry.point(id), &mut folded);
            filter.push(&folded);
        }
        let live = entry.live_ids();
        let mut kept = Vec::new();
        let mut values = Vec::new();
        let mut dts = 0u64;
        for &id in live.iter() {
            fold(entry.point(id), &mut folded);
            if !filter.any_dominates(&folded, &mut dts) {
                kept.push(id);
                values.extend_from_slice(&folded);
            }
        }
        if let (Some(tr), Some(t0)) = (trace, started) {
            tr.add_span(
                SpanKind::CacheSeed,
                t0,
                self.clock.now().saturating_sub(t0),
                dts,
            );
        }
        let view = Dataset::from_flat(values, width).expect("folded projection of a valid dataset");
        Some((view, kept, dts))
    }

    /// Executes a [`Strategy::Sharded`] plan: folds each shard's live
    /// rows into a per-shard working set (*scatter*), computes the
    /// per-shard local skylines — fanned out one shard per pool lane
    /// when the pool has more than one thread — and combines them with
    /// the witness-pruned [`merge`](crate::merge). Per-shard spans and
    /// dominance-test counts land on the trace under
    /// [`SpanKind::ShardLocal`], keyed by shard index.
    fn run_sharded(
        &self,
        prepared: &Prepared,
        plan: &QueryPlan,
        store: &ShardedStore,
        pool: &ThreadPool,
        trace: Option<&Arc<ActiveTrace>>,
    ) -> (Vec<u32>, RunStats, MergeStats) {
        /// One shard's fan-out slot: shard index, stable ids, folded
        /// coordinates, and the local result filled in by its lane.
        type ShardSlot = (usize, Vec<u32>, Vec<f32>, Option<(ShardSkyline, RunStats)>);

        let dims = &plan.effective_dims;
        let width = dims.len();
        let max_mask = prepared.max_mask;
        let k = store.k();

        // Scatter: one pass per shard over its tile base + append
        // segment, folding preferences and projecting onto the
        // effective dimensions. Dead slots skipped here are charged as
        // scan debt — the observed cost driving the adaptive
        // compaction trigger.
        let scatter_t0 = trace.map(|_| self.clock.now());
        let mut work: Vec<ShardSlot> = Vec::with_capacity(k);
        for i in 0..k {
            let shard = store.shard(i);
            let mut ids = Vec::with_capacity(shard.live_len());
            let mut values = Vec::with_capacity(shard.live_len() * width);
            shard.for_each_live(|id, row| {
                ids.push(id);
                for &c in dims {
                    values.push(flip_pref(row[c], max_mask & (1 << c) != 0));
                }
            });
            store.add_scan_debt(i, shard.dead() as u64);
            work.push((i, ids, values, None));
        }
        if let (Some(tr), Some(t0)) = (trace, scatter_t0) {
            tr.add_span(
                SpanKind::ShardScatter,
                t0,
                self.clock.now().saturating_sub(t0),
                0,
            );
        }

        // Local skylines: each shard runs a regular algorithm (the
        // tile kernels untouched) tuned to its own cardinality, on a
        // working set small enough to stay cache-resident.
        let mut cfg = plan.config.clone();
        cfg.span_sink = None;
        cfg.dt_counters = None;
        let run_local = |lane: &ThreadPool, i: usize, ids: Vec<u32>, values: Vec<f32>| {
            let n = ids.len();
            let started = self.clock.now();
            let data =
                Dataset::from_flat(values, width).expect("folded projection of a valid dataset");
            let (indices, stats) = if n == 0 {
                (Vec::new(), RunStats::default())
            } else {
                let algo = if n <= 4096 {
                    Algorithm::Sfs
                } else {
                    Algorithm::Hybrid
                };
                let r = algo.run(&data, lane, &cfg);
                (r.indices, r.stats)
            };
            if let Some(tr) = trace {
                tr.add_span_sharded(
                    SpanKind::ShardLocal,
                    Some(i as u32),
                    started,
                    self.clock.now().saturating_sub(started),
                    stats.dominance_tests,
                );
            }
            let mut members = Vec::with_capacity(indices.len());
            let mut rows = Vec::with_capacity(indices.len() * width);
            for &pos in &indices {
                members.push(ids[pos as usize]);
                rows.extend_from_slice(data.row(pos as usize));
            }
            (
                ShardSkyline {
                    shard: i,
                    ids: members,
                    rows,
                },
                stats,
            )
        };
        if pool.threads() > 1 && k > 1 {
            par_chunks_mut(pool, &mut work, 1, |_, chunk| {
                let lane = ThreadPool::new(1);
                for slot in chunk.iter_mut() {
                    let ids = std::mem::take(&mut slot.1);
                    let values = std::mem::take(&mut slot.2);
                    slot.3 = Some(run_local(&lane, slot.0, ids, values));
                }
            });
        } else {
            for slot in work.iter_mut() {
                let ids = std::mem::take(&mut slot.1);
                let values = std::mem::take(&mut slot.2);
                slot.3 = Some(run_local(pool, slot.0, ids, values));
            }
        }
        let mut locals = Vec::with_capacity(k);
        let mut stats = RunStats::default();
        for (_, _, _, out) in work {
            let (local, s) = out.expect("every shard ran");
            stats.dominance_tests += s.dominance_tests;
            stats.init += s.init;
            stats.phase1 += s.phase1;
            stats.phase2 += s.phase2;
            stats.total += s.total;
            locals.push(local);
        }

        // Merge: witness probe + sum-sorted SIMD range scans over the
        // concatenated local skylines; never revisits base data.
        let merge_t0 = trace.map(|_| self.clock.now());
        let (mut merged, mstats) = merge_local_skylines(width, &locals);
        merged.sort_unstable();
        if let (Some(tr), Some(t0)) = (trace, merge_t0) {
            tr.add_span(
                SpanKind::ShardMerge,
                t0,
                self.clock.now().saturating_sub(t0),
                mstats.dominance_tests,
            );
        }
        stats.dominance_tests += mstats.dominance_tests;
        stats.skyline_size = merged.len();
        (merged, stats, mstats)
    }

    /// Executes a [`Strategy::Sharded`] plan for a k-skyband query:
    /// folds each shard's live rows (*scatter*), computes the
    /// per-shard **local skybands** with the sum-sorted counting
    /// kernel — fanned out one shard per pool lane — then combines
    /// them with the counting [`merge`](crate::merge), which is exact
    /// below `k` because every missing dominator is transitively
    /// covered by broadcast ones (see
    /// [`merge_local_skybands`]). Returns `(stable id, exact global
    /// dominator count)` pairs sorted by id.
    fn run_sharded_skyband(
        &self,
        prepared: &Prepared,
        plan: &QueryPlan,
        band_k: u32,
        store: &ShardedStore,
        pool: &ThreadPool,
        trace: Option<&Arc<ActiveTrace>>,
    ) -> (Vec<(u32, u32)>, RunStats, MergeStats) {
        /// One shard's fan-out slot: shard index, stable ids, folded
        /// coordinates, and the local skyband filled in by its lane.
        type ShardSlot = (usize, Vec<u32>, Vec<f32>, Option<(ShardSkyband, u64)>);

        let dims = &plan.effective_dims;
        let width = dims.len();
        let max_mask = prepared.max_mask;
        let k = store.k();

        let scatter_t0 = trace.map(|_| self.clock.now());
        let mut work: Vec<ShardSlot> = Vec::with_capacity(k);
        for i in 0..k {
            let shard = store.shard(i);
            let mut ids = Vec::with_capacity(shard.live_len());
            let mut values = Vec::with_capacity(shard.live_len() * width);
            shard.for_each_live(|id, row| {
                ids.push(id);
                for &c in dims {
                    values.push(flip_pref(row[c], max_mask & (1 << c) != 0));
                }
            });
            store.add_scan_debt(i, shard.dead() as u64);
            work.push((i, ids, values, None));
        }
        if let (Some(tr), Some(t0)) = (trace, scatter_t0) {
            tr.add_span(
                SpanKind::ShardScatter,
                t0,
                self.clock.now().saturating_sub(t0),
                0,
            );
        }

        let run_local = |i: usize, ids: Vec<u32>, values: Vec<f32>| {
            let started = self.clock.now();
            let mut dts = 0u64;
            let pairs = if ids.is_empty() {
                Vec::new()
            } else {
                skyband_counts(&values, width, band_k, &mut dts)
            };
            if let Some(tr) = trace {
                tr.add_span_sharded(
                    SpanKind::ShardLocal,
                    Some(i as u32),
                    started,
                    self.clock.now().saturating_sub(started),
                    dts,
                );
            }
            let mut members = Vec::with_capacity(pairs.len());
            let mut counts = Vec::with_capacity(pairs.len());
            let mut rows = Vec::with_capacity(pairs.len() * width);
            for (pos, c) in pairs {
                members.push(ids[pos as usize]);
                counts.push(c);
                rows.extend_from_slice(&values[pos as usize * width..(pos as usize + 1) * width]);
            }
            (
                ShardSkyband {
                    shard: i,
                    ids: members,
                    counts,
                    rows,
                },
                dts,
            )
        };
        if pool.threads() > 1 && k > 1 {
            par_chunks_mut(pool, &mut work, 1, |_, chunk| {
                for slot in chunk.iter_mut() {
                    let ids = std::mem::take(&mut slot.1);
                    let values = std::mem::take(&mut slot.2);
                    slot.3 = Some(run_local(slot.0, ids, values));
                }
            });
        } else {
            for slot in work.iter_mut() {
                let ids = std::mem::take(&mut slot.1);
                let values = std::mem::take(&mut slot.2);
                slot.3 = Some(run_local(slot.0, ids, values));
            }
        }
        let mut locals = Vec::with_capacity(k);
        let mut stats = RunStats::default();
        for (_, _, _, out) in work {
            let (local, dts) = out.expect("every shard ran");
            stats.dominance_tests += dts;
            locals.push(local);
        }

        let merge_t0 = trace.map(|_| self.clock.now());
        let (mut merged, mstats) = merge_local_skybands(width, band_k, &locals);
        merged.sort_unstable();
        if let (Some(tr), Some(t0)) = (trace, merge_t0) {
            tr.add_span(
                SpanKind::ShardMerge,
                t0,
                self.clock.now().saturating_sub(t0),
                mstats.dominance_tests,
            );
        }
        stats.dominance_tests += mstats.dominance_tests;
        stats.skyline_size = merged.len();
        (merged, stats, mstats)
    }
}

/// Decodes a dimension bitmask into the ascending dimension list.
fn mask_dims(dim_mask: u32) -> Vec<usize> {
    (0..32).filter(|c| dim_mask & (1 << c) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    use skyline_core::verify;
    use skyline_data::{generate, Distribution, Preference};

    fn small_engine() -> Engine {
        Engine::with_config(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn unknown_dataset_errors() {
        let engine = small_engine();
        assert_eq!(
            engine.execute(&SkylineQuery::new("nope")).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
        assert_eq!(
            engine.insert("nope", &[vec![1.0]]).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
    }

    #[test]
    fn full_space_query_matches_reference() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Independent, 3_000, 4, 3, &pool);
        let expect = verify::naive_skyline(&data);
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert_eq!(r.indices(), expect.as_slice());
        assert!(!r.cache_hit);
        assert!(r.stats.is_some());
    }

    #[test]
    fn preference_max_flips_direction() {
        let engine = small_engine();
        let data = Dataset::from_rows(&[
            vec![1.0, 1.0], // min on both; max on neither
            vec![9.0, 9.0], // max on both
            vec![5.0, 5.0],
        ])
        .unwrap();
        engine.register("d", data);
        let min = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert_eq!(min.indices(), &[0]);
        let max = engine
            .execute(&SkylineQuery::new("d").preference([Preference::Max, Preference::Max]))
            .unwrap();
        assert_eq!(max.indices(), &[1]);
    }

    #[test]
    fn min_scan_handles_ties_and_direction() {
        let engine = small_engine();
        let data = Dataset::from_rows(&[
            vec![2.0, 10.0],
            vec![1.0, 20.0],
            vec![1.0, 30.0],
            vec![3.0, 30.0],
        ])
        .unwrap();
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d").dims([0])).unwrap();
        assert_eq!(r.plan.strategy, Strategy::MinScan { dim: 0 });
        assert_eq!(r.indices(), &[1, 2]);
        assert!(r.stats.is_none());
        let r = engine
            .execute(
                &SkylineQuery::new("d")
                    .dims([1])
                    .preference([Preference::Max]),
            )
            .unwrap();
        assert_eq!(r.indices(), &[2, 3]);
    }

    #[test]
    fn limit_truncates_but_caches_fully() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Anticorrelated, 2_000, 3, 5, &pool);
        let expect = verify::naive_skyline(&data);
        assert!(expect.len() > 3);
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d").limit(3)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.indices(), &expect[..3]);
        assert_eq!(r.total_skyline_size(), expect.len());
        // A different limit on the same subspace is a cache hit.
        let r2 = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(r2.cache_hit);
        assert_eq!(r2.indices(), expect.as_slice());
    }

    #[test]
    fn empty_dataset_yields_empty_result() {
        let engine = small_engine();
        engine.register("empty", Dataset::from_flat(vec![], 3).unwrap());
        let r = engine.execute(&SkylineQuery::new("empty")).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.plan.strategy, Strategy::Trivial);
    }

    #[test]
    fn batch_matches_individual_execution() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        engine.register("a", generate(Distribution::Independent, 1_500, 4, 9, &pool));
        engine.register(
            "b",
            generate(Distribution::Anticorrelated, 12_000, 4, 9, &pool),
        );
        let queries = vec![
            SkylineQuery::new("a"),
            SkylineQuery::new("a").dims([0, 1]),
            SkylineQuery::new("b").dims([1, 2, 3]),
            SkylineQuery::new("missing"),
            SkylineQuery::new("b").dims([2]),
        ];
        let batch = engine.execute_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            match r {
                Ok(r) => {
                    let solo = engine.execute(q).unwrap();
                    assert_eq!(solo.indices(), r.indices(), "query {q:?}");
                }
                Err(e) => assert_eq!(*e, EngineError::UnknownDataset("missing".into())),
            }
        }
    }

    #[test]
    fn batch_counts_each_query_probe_exactly_once() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        engine.register(
            "d",
            generate(Distribution::Independent, 2_000, 3, 17, &pool),
        );
        let queries = vec![
            SkylineQuery::new("d"),
            SkylineQuery::new("d").dims([0, 1]),
            SkylineQuery::new("d").dims([1, 2]),
        ];
        engine.execute_batch(&queries);
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 3), "{s:?}");
        engine.execute_batch(&queries);
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses), (3, 3), "{s:?}");
    }

    #[test]
    fn engine_algorithm_results_match_reference_per_subspace() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Independent, 9_000, 4, 13, &pool);
        let reference = data.clone();
        engine.register("d", data);
        for dims in [&[0usize, 1][..], &[1, 3], &[0, 2, 3], &[0, 1, 2, 3]] {
            let r = engine
                .execute(&SkylineQuery::new("d").dims(dims.iter().copied()))
                .unwrap();
            let expect = verify::naive_skyline_on(&reference, dims);
            assert_eq!(r.indices(), expect.as_slice(), "{dims:?}");
        }
    }

    #[test]
    fn insert_patches_cached_results_eagerly() {
        let engine = small_engine();
        let data = Dataset::from_rows(&[
            vec![1.0, 9.0],
            vec![9.0, 1.0],
            vec![5.0, 5.0], // skyline (incomparable)
        ])
        .unwrap();
        engine.register("d", data);
        let cold = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert_eq!(cold.indices(), &[0, 1, 2]);

        // New point dominates row 2 and joins.
        let report = engine.insert("d", &[vec![4.0, 4.0]]).unwrap();
        assert_eq!(report.inserted_ids, vec![3]);
        assert_eq!(report.cache_patched, 1);
        assert!(!report.compacted);

        let warm = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(warm.cache_hit, "patched entry must serve the new version");
        assert_eq!(warm.indices(), &[0, 1, 3]);
        assert_eq!(warm.dataset_version, report.version);
        assert_eq!(engine.cache_stats().patches, 1);
    }

    #[test]
    fn delete_defers_to_query_time_delta() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Independent, 20_000, 4, 19, &pool);
        let reference = data.clone();
        engine.register("d", data);
        let cold = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(!cold.cache_hit);

        // Delete one skyline member: the cached entry stays at the old
        // version and the next query patches it via Strategy::Delta.
        let victim = cold.indices()[0];
        let report = engine.delete("d", &[victim]).unwrap();
        assert_eq!(report.cache_patched, 0);
        assert!(!report.compacted);

        let after = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(!after.cache_hit);
        assert!(
            matches!(after.plan.strategy, Strategy::Delta { .. }),
            "{:?}",
            after.plan.strategy
        );
        // Ground truth: naive skyline over the survivors, with stable
        // ids (= original row numbers, no compaction happened).
        let entry = engine.dataset("d").unwrap();
        let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
            .iter()
            .map(|&k| entry.live_ids()[k as usize])
            .collect();
        assert_eq!(after.indices(), expect.as_slice());
        let _ = reference;

        // And the delta result is cached at the new version.
        let warm = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.indices(), expect.as_slice());
    }

    #[test]
    fn mutations_on_subspace_and_preference_queries_stay_correct() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Anticorrelated, 1_000, 3, 23, &pool);
        engine.register("d", data);
        let q = SkylineQuery::new("d")
            .dims([0, 2])
            .preference([Preference::Min, Preference::Max]);
        engine.execute(&q).unwrap();
        engine
            .update_batch("d", &[vec![0.01, 0.5, 0.99], vec![0.5, 0.5, 0.01]], &[3, 8])
            .unwrap();
        let got = engine.execute(&q).unwrap();
        let entry = engine.dataset("d").unwrap();
        let expect: Vec<u32> = verify::naive_skyline_on_pref(&entry.snapshot(), &[0, 2], 0b100)
            .iter()
            .map(|&k| entry.live_ids()[k as usize])
            .collect();
        assert_eq!(got.indices(), expect.as_slice());
    }

    #[test]
    fn compaction_voids_prior_results_and_renumbers() {
        let engine = Engine::with_config(EngineConfig {
            threads: 2,
            compact_fraction: 0.3,
            ..EngineConfig::default()
        });
        let data = Dataset::from_rows(&[
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ])
        .unwrap();
        engine.register("d", data);
        engine.execute(&SkylineQuery::new("d")).unwrap();
        // Deleting half the rows trips the 0.3 threshold.
        let report = engine.delete("d", &[0, 2]).unwrap();
        assert!(report.compacted);
        let entry = engine.dataset("d").unwrap();
        assert!(entry.is_pristine());
        assert_eq!(entry.live_len(), 2);
        let r = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(!r.cache_hit, "compaction must void prior results");
        // Survivors renumbered 0..n in old id order.
        assert_eq!(r.indices(), &[0, 1]);
    }

    #[test]
    fn mutation_validation_errors_surface() {
        let engine = small_engine();
        engine.register("d", Dataset::from_rows(&[vec![1.0, 2.0]]).unwrap());
        assert_eq!(
            engine.insert("d", &[vec![1.0]]).unwrap_err(),
            EngineError::RowArity {
                row: 0,
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            engine.delete("d", &[5]).unwrap_err(),
            EngineError::UnknownRow { id: 5 }
        );
        assert_eq!(
            engine.insert("d", &[vec![1.0, f32::INFINITY]]).unwrap_err(),
            EngineError::NonFiniteValue { row: 0, col: 1 }
        );
    }

    #[test]
    fn mask_dims_round_trips() {
        assert_eq!(mask_dims(0b1011), vec![0, 1, 3]);
        assert_eq!(mask_dims(0), Vec::<usize>::new());
    }
}
