//! The engine: catalog + planner + cache + shared thread pool.

use std::sync::Arc;
use std::time::Instant;

use skyline_data::Dataset;
use skyline_parallel::{available_threads, par_chunks_mut, ThreadPool};

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::catalog::{Catalog, DatasetEntry};
use crate::error::EngineError;
use crate::planner::{Planner, PlannerConfig, QueryPlan, Strategy};
use crate::query::{QueryResult, SkylineQuery};

/// Construction-time knobs for [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Thread lanes of the shared pool; `0` uses every available core.
    pub threads: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Planner thresholds.
    pub planner: PlannerConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_capacity: 256,
            planner: PlannerConfig::default(),
        }
    }
}

/// A thread-safe skyline query engine.
///
/// Owns a dataset [catalog](Catalog), an adaptive [planner](Planner),
/// an LRU [result cache](ResultCache), and one shared
/// [`ThreadPool`] that every query executes on — concurrent callers
/// share the pool (the pool serialises parallel regions internally)
/// instead of oversubscribing the machine with per-query pools.
///
/// ```
/// use skyline_engine::{Engine, SkylineQuery};
/// use skyline_data::Dataset;
///
/// let engine = Engine::new();
/// let hotels = Dataset::from_rows(&[
///     vec![120.0, 2.0],
///     vec![90.0, 5.0],
///     vec![130.0, 1.0],
///     vec![150.0, 4.0], // dominated
/// ])
/// .unwrap();
/// engine.register("hotels", hotels);
///
/// let result = engine.execute(&SkylineQuery::new("hotels")).unwrap();
/// assert_eq!(result.indices(), &[0, 1, 2]);
///
/// // Same query again: served from the cache.
/// let again = engine.execute(&SkylineQuery::new("hotels")).unwrap();
/// assert!(again.cache_hit);
/// ```
#[derive(Debug)]
pub struct Engine {
    pool: Arc<ThreadPool>,
    catalog: Catalog,
    cache: ResultCache,
    planner: Planner,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// A query resolved against the catalog and canonicalised, ready to
/// probe the cache or execute.
struct Prepared {
    entry: Arc<DatasetEntry>,
    key: CacheKey,
    dims: Vec<usize>,
    max_mask: u32,
    limit: Option<usize>,
}

impl Engine {
    /// An engine with default configuration (all cores, 256-entry
    /// cache).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(cfg: EngineConfig) -> Self {
        let threads = if cfg.threads == 0 {
            available_threads()
        } else {
            cfg.threads
        };
        Self::with_pool(cfg, Arc::new(ThreadPool::new(threads)))
    }

    /// An engine sharing an existing pool (e.g. with a surrounding
    /// application that also runs parallel work).
    pub fn with_pool(cfg: EngineConfig, pool: Arc<ThreadPool>) -> Self {
        Self {
            pool,
            catalog: Catalog::new(),
            cache: ResultCache::new(cfg.cache_capacity),
            planner: Planner::new(cfg.planner),
        }
    }

    /// Lanes of the shared pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Registers (or replaces) a dataset under `name`, precomputing
    /// per-dimension statistics and sorted projections. Returns the
    /// dataset's new version. Re-registration invalidates every cached
    /// result of older versions (results a concurrent query already
    /// computed against the *new* version survive).
    pub fn register(&self, name: &str, data: Dataset) -> u64 {
        let entry = self.catalog.register(name, data, &self.pool);
        self.cache.purge_dataset_below(entry.id(), entry.version());
        entry.version()
    }

    /// Removes a dataset; its cached results are dropped too. Returns
    /// whether it was registered.
    pub fn evict(&self, name: &str) -> bool {
        match self.catalog.evict(name) {
            Some(entry) => {
                self.cache.purge_dataset(entry.id());
                true
            }
            None => false,
        }
    }

    /// The catalog entry for `name`, if registered.
    pub fn dataset(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.catalog.get(name)
    }

    /// Names, versions, and cardinalities of all registered datasets.
    pub fn datasets(&self) -> Vec<(String, u64, usize)> {
        self.catalog.list()
    }

    /// Cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Plans a query without executing it (introspection; no cache
    /// probe, no side effects beyond the planner's sampling pass).
    pub fn plan(&self, query: &SkylineQuery) -> Result<QueryPlan, EngineError> {
        let prepared = self.prepare(query)?;
        Ok(self.planner.plan(
            &prepared.entry,
            &prepared.dims,
            prepared.max_mask,
            self.threads(),
        ))
    }

    /// Executes one query: cache probe, then plan + run on a miss.
    pub fn execute(&self, query: &SkylineQuery) -> Result<QueryResult, EngineError> {
        let prepared = self.prepare(query)?;
        Ok(self.execute_prepared(&prepared, &self.pool))
    }

    /// Executes a batch of queries against the shared pool and returns
    /// per-query results in order.
    ///
    /// Scheduling: cache hits are answered immediately; misses whose
    /// plan is sequential (BNL/SFS/BSkyTree/min-scan) run **next to
    /// each other**, one query per lane, so the pool is saturated by
    /// inter-query parallelism; misses with parallel plans (Q-Flow/
    /// Hybrid) then run one at a time, each spanning the whole pool.
    /// Either way the pool is never oversubscribed.
    ///
    /// Each query is planned once and probes the cache once for the
    /// effectiveness counters; the extra de-duplication re-probe before
    /// a parallel plan runs (an identical earlier query in the batch
    /// may have filled the cache already) is uncounted.
    pub fn execute_batch(&self, queries: &[SkylineQuery]) -> Vec<Result<QueryResult, EngineError>> {
        let mut out: Vec<Option<Result<QueryResult, EngineError>>> =
            (0..queries.len()).map(|_| None).collect();

        // Resolve, probe the cache, and plan everything up front.
        let mut seq: Vec<(usize, Prepared, QueryPlan)> = Vec::new();
        let mut par: Vec<(usize, Prepared, QueryPlan)> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let prepared = match self.prepare(query) {
                Ok(p) => p,
                Err(e) => {
                    out[i] = Some(Err(e));
                    continue;
                }
            };
            if let Some(hit) = self.probe(&prepared, Instant::now()) {
                out[i] = Some(Ok(hit));
                continue;
            }
            let plan = self.planner.plan(
                &prepared.entry,
                &prepared.dims,
                prepared.max_mask,
                self.threads(),
            );
            if matches!(plan.strategy, Strategy::Algorithm(a) if a.is_parallel()) {
                par.push((i, prepared, plan));
            } else {
                seq.push((i, prepared, plan));
            }
        }

        // Sequential plans: one query per lane. Each lane runs its
        // queries on a single-threaded pool (spawns no workers), so
        // total concurrency stays at `threads()`.
        if !seq.is_empty() {
            let mut slots: Vec<(usize, Prepared, QueryPlan, Option<QueryResult>)> = seq
                .into_iter()
                .map(|(i, prepared, plan)| (i, prepared, plan, None))
                .collect();
            par_chunks_mut(&self.pool, &mut slots, 1, |_, chunk| {
                let lane_pool = ThreadPool::new(1);
                for (_, prepared, plan, result) in chunk.iter_mut() {
                    // Uncounted de-duplication probe: an identical
                    // query may have completed in another lane.
                    *result = Some(match self.cache.get_uncounted(&prepared.key) {
                        Some(full) => self.hit_result(prepared, full, Instant::now()),
                        None => self.run_plan(prepared, plan.clone(), &lane_pool),
                    });
                }
            });
            for (i, _, _, result) in slots {
                out[i] = Some(Ok(result.expect("filled by the parallel region")));
            }
        }

        // Parallel plans: whole pool, one at a time, reusing the plan
        // from classification. The de-duplication re-probe is
        // uncounted — this query's miss is already in the stats.
        for (i, prepared, plan) in par {
            let started = Instant::now();
            let result = match self.cache.get_uncounted(&prepared.key) {
                Some(full) => self.hit_result(&prepared, full, started),
                None => self.run_plan(&prepared, plan, &self.pool),
            };
            out[i] = Some(Ok(result));
        }

        out.into_iter()
            .map(|slot| slot.expect("every query produced a result"))
            .collect()
    }

    /// Resolves the dataset and canonicalises the query.
    fn prepare(&self, query: &SkylineQuery) -> Result<Prepared, EngineError> {
        let entry = self
            .catalog
            .get(query.dataset())
            .ok_or_else(|| EngineError::UnknownDataset(query.dataset().to_string()))?;
        let (dims, max_mask) = query.canonicalize(entry.data().dims())?;
        let dim_mask = dims.iter().fold(0u32, |m, &d| m | (1 << d));
        let key = CacheKey {
            dataset_id: entry.id(),
            version: entry.version(),
            dim_mask,
            max_mask,
        };
        Ok(Prepared {
            entry,
            key,
            dims,
            max_mask,
            limit: query.result_limit(),
        })
    }

    /// Counted cache probe; on a hit builds the full result without
    /// planning.
    fn probe(&self, prepared: &Prepared, started: Instant) -> Option<QueryResult> {
        let full = self.cache.get(&prepared.key)?;
        Some(self.hit_result(prepared, full, started))
    }

    /// Wraps a cached index list as a hit result.
    fn hit_result(
        &self,
        prepared: &Prepared,
        full: Arc<Vec<u32>>,
        started: Instant,
    ) -> QueryResult {
        QueryResult {
            full,
            limit: prepared.limit,
            plan: QueryPlan::trivial("").cached(),
            cache_hit: true,
            stats: None,
            dataset_version: prepared.entry.version(),
            elapsed: started.elapsed(),
        }
    }

    /// Probes (counted), plans, and runs a prepared query on `pool`.
    fn execute_prepared(&self, prepared: &Prepared, pool: &ThreadPool) -> QueryResult {
        if let Some(hit) = self.probe(prepared, Instant::now()) {
            return hit;
        }
        let plan = self.planner.plan(
            &prepared.entry,
            &prepared.dims,
            prepared.max_mask,
            pool.threads(),
        );
        self.run_plan(prepared, plan, pool)
    }

    /// Runs an already-made plan on `pool` (the shared pool, or a
    /// lane-local single-threaded pool inside `execute_batch`) and
    /// fills the cache with the result.
    fn run_plan(&self, prepared: &Prepared, plan: QueryPlan, pool: &ThreadPool) -> QueryResult {
        let started = Instant::now();
        let entry = &prepared.entry;
        let (indices, stats) = match &plan.strategy {
            Strategy::Cached => unreachable!("planner never emits Cached"),
            Strategy::Trivial => {
                // No discriminating dimension: every row is in the
                // skyline (vacuously non-dominated), or none on an
                // empty dataset.
                ((0..entry.data().len() as u32).collect::<Vec<u32>>(), None)
            }
            Strategy::MinScan { dim } => {
                let max = prepared.max_mask & (1 << dim) != 0;
                (entry.extreme_rows(*dim, max), None)
            }
            Strategy::Algorithm(algo) => {
                let result = match self.materialized_view(
                    entry,
                    &plan.effective_dims,
                    prepared.max_mask,
                    pool,
                ) {
                    Some(view) => algo.run(&view, pool, &plan.config),
                    None => algo.run(entry.data(), pool, &plan.config),
                };
                (result.indices, Some(result.stats))
            }
        };

        let full = Arc::new(indices);
        // Don't cache results for a version that was replaced or
        // evicted while we computed: versioned keys make such entries
        // unservable, so they would only squat in LRU slots. (Best
        // effort — a purge racing between this check and the insert
        // can still let one dead entry in; LRU pressure reclaims it.)
        let still_current = self
            .catalog
            .get(entry.name())
            .is_some_and(|current| current.version() == entry.version());
        if still_current {
            self.cache.insert(prepared.key, Arc::clone(&full));
        }
        QueryResult {
            full,
            limit: prepared.limit,
            plan,
            cache_hit: false,
            stats,
            dataset_version: entry.version(),
            elapsed: started.elapsed(),
        }
    }

    /// Builds the projected (and preference-negated) dataset a plan's
    /// algorithm runs on, or `None` when the stored rows can be used
    /// as-is (all dimensions selected, all minimised).
    fn materialized_view(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        pool: &ThreadPool,
    ) -> Option<Dataset> {
        let data = entry.data();
        let d = data.dims();
        if dims.len() == d && max_mask == 0 {
            return None;
        }
        let n = data.len();
        let mut values = vec![0.0f32; n * dims.len()];
        let width = dims.len();
        par_chunks_mut(pool, &mut values, 4096 * width.max(1), |offset, chunk| {
            debug_assert_eq!(offset % width, 0);
            let first_row = offset / width;
            for (k, out) in chunk.chunks_mut(width).enumerate() {
                let src = data.row(first_row + k);
                for (slot, &c) in out.iter_mut().zip(dims) {
                    let v = src[c];
                    *slot = if max_mask & (1 << c) != 0 { -v } else { v };
                }
            }
        });
        Some(Dataset::from_flat(values, width).expect("projection of a valid dataset is valid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use skyline_core::verify;
    use skyline_data::{generate, Distribution, Preference};

    fn small_engine() -> Engine {
        Engine::with_config(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn unknown_dataset_errors() {
        let engine = small_engine();
        assert_eq!(
            engine.execute(&SkylineQuery::new("nope")).unwrap_err(),
            EngineError::UnknownDataset("nope".into())
        );
    }

    #[test]
    fn full_space_query_matches_reference() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Independent, 3_000, 4, 3, &pool);
        let expect = verify::naive_skyline(&data);
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert_eq!(r.indices(), expect.as_slice());
        assert!(!r.cache_hit);
        assert!(r.stats.is_some());
    }

    #[test]
    fn preference_max_flips_direction() {
        let engine = small_engine();
        let data = Dataset::from_rows(&[
            vec![1.0, 1.0], // min on both; max on neither
            vec![9.0, 9.0], // max on both
            vec![5.0, 5.0],
        ])
        .unwrap();
        engine.register("d", data);
        let min = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert_eq!(min.indices(), &[0]);
        let max = engine
            .execute(&SkylineQuery::new("d").preference([Preference::Max, Preference::Max]))
            .unwrap();
        assert_eq!(max.indices(), &[1]);
    }

    #[test]
    fn min_scan_handles_ties_and_direction() {
        let engine = small_engine();
        let data = Dataset::from_rows(&[
            vec![2.0, 10.0],
            vec![1.0, 20.0],
            vec![1.0, 30.0],
            vec![3.0, 30.0],
        ])
        .unwrap();
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d").dims([0])).unwrap();
        assert_eq!(r.plan.strategy, Strategy::MinScan { dim: 0 });
        assert_eq!(r.indices(), &[1, 2]);
        assert!(r.stats.is_none());
        let r = engine
            .execute(
                &SkylineQuery::new("d")
                    .dims([1])
                    .preference([Preference::Max]),
            )
            .unwrap();
        assert_eq!(r.indices(), &[2, 3]);
    }

    #[test]
    fn limit_truncates_but_caches_fully() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Anticorrelated, 2_000, 3, 5, &pool);
        let expect = verify::naive_skyline(&data);
        assert!(expect.len() > 3);
        engine.register("d", data);
        let r = engine.execute(&SkylineQuery::new("d").limit(3)).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.indices(), &expect[..3]);
        assert_eq!(r.total_skyline_size(), expect.len());
        // A different limit on the same subspace is a cache hit.
        let r2 = engine.execute(&SkylineQuery::new("d")).unwrap();
        assert!(r2.cache_hit);
        assert_eq!(r2.indices(), expect.as_slice());
    }

    #[test]
    fn empty_dataset_yields_empty_result() {
        let engine = small_engine();
        engine.register("empty", Dataset::from_flat(vec![], 3).unwrap());
        let r = engine.execute(&SkylineQuery::new("empty")).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.plan.strategy, Strategy::Trivial);
    }

    #[test]
    fn batch_matches_individual_execution() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        engine.register("a", generate(Distribution::Independent, 1_500, 4, 9, &pool));
        engine.register(
            "b",
            generate(Distribution::Anticorrelated, 12_000, 4, 9, &pool),
        );
        let queries = vec![
            SkylineQuery::new("a"),
            SkylineQuery::new("a").dims([0, 1]),
            SkylineQuery::new("b").dims([1, 2, 3]),
            SkylineQuery::new("missing"),
            SkylineQuery::new("b").dims([2]),
        ];
        let batch = engine.execute_batch(&queries);
        for (q, r) in queries.iter().zip(&batch) {
            match r {
                Ok(r) => {
                    let solo = engine.execute(q).unwrap();
                    assert_eq!(solo.indices(), r.indices(), "query {q:?}");
                }
                Err(e) => assert_eq!(*e, EngineError::UnknownDataset("missing".into())),
            }
        }
    }

    #[test]
    fn batch_counts_each_query_probe_exactly_once() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        engine.register(
            "d",
            generate(Distribution::Independent, 2_000, 3, 17, &pool),
        );
        let queries = vec![
            SkylineQuery::new("d"),
            SkylineQuery::new("d").dims([0, 1]),
            SkylineQuery::new("d").dims([1, 2]),
        ];
        engine.execute_batch(&queries);
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses), (0, 3), "{s:?}");
        engine.execute_batch(&queries);
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses), (3, 3), "{s:?}");
    }

    #[test]
    fn engine_algorithm_results_match_reference_per_subspace() {
        let engine = small_engine();
        let pool = ThreadPool::new(2);
        let data = generate(Distribution::Independent, 9_000, 4, 13, &pool);
        let reference = data.clone();
        engine.register("d", data);
        for dims in [&[0usize, 1][..], &[1, 3], &[0, 2, 3], &[0, 1, 2, 3]] {
            let r = engine
                .execute(&SkylineQuery::new("d").dims(dims.iter().copied()))
                .unwrap();
            let expect = verify::naive_skyline_on(&reference, dims);
            assert_eq!(r.indices(), expect.as_slice(), "{dims:?}");
        }
    }
}
