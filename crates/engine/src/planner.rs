//! The adaptive query planner.
//!
//! Chooses how to answer a subspace skyline query from the shape of the
//! work: cardinality, subspace dimensionality, thread budget, and an
//! estimated skyline density obtained by running the naive skyline over
//! the catalog's precomputed sample (restricted to the query's
//! dimensions via the subspace dominance kernels — no projection is
//! materialised to plan).
//!
//! The decision procedure, in order:
//!
//! 1. constant dimensions (catalog min == max) are dropped — they can
//!    never decide a dominance test;
//! 2. one surviving dimension → **min-scan** over the catalog's sorted
//!    projection, no algorithm at all;
//! 3. a prior-version cached result reachable through a small mutation
//!    delta → **delta maintenance** (patch the cached skyline with the
//!    `skyline_core::maintain` kernels instead of recomputing);
//! 4. tiny inputs → **BNL** (any setup cost dwarfs the scan);
//! 5. small inputs → **SFS** (one sort, then a cheap filter pass);
//! 6. a dataset registered with an attached sharded store, above the
//!    `sharded_min_n` threshold → **sharded fan-out** (per-shard
//!    skylines over cache-resident working sets, witness-pruned
//!    merge), priced from the per-shard live counts;
//! 7. one thread → **BSkyTree** (the paper's best sequential
//!    algorithm);
//! 8. otherwise **Q-Flow** when the sampled skyline density is low (the
//!    shared global skyline stays small, so its block flow is all
//!    overhead saved) and **Hybrid** when it is high or the subspace is
//!    high-dimensional (point-based partitioning and the two-level
//!    `M(S)` structure pay for themselves), with α tuned to `n` and the
//!    thread count via [`SkylineConfig::tuned`] unless the live
//!    [`PlannerConfig`] carries fitted overrides.
//!
//! Every decision path estimates the sampled skyline fraction (the
//! sample is precomputed and capped, so the estimate is microseconds)
//! and reports it in the plan — the [feedback loop](feedback) buckets
//! observed runtimes by that fraction, so even min-scan, tiny-input,
//! and delta plans must carry the feature.
//!
//! ## Live thresholds
//!
//! The planner's thresholds are not fixed: [`Planner::install`] swaps
//! in a replacement [`PlannerConfig`] atomically (each planning pass
//! takes one consistent snapshot up front, so in-flight decisions never
//! see a half-updated config). The [`feedback`] module re-fits the
//! config from observed runtimes; its hysteresis band ensures a
//! threshold only moves when the observed advantage is decisive, so
//! plan choices do not thrash between near-equal strategies.

pub mod feedback;

use std::sync::{Arc, RwLock};

use skyline_core::algo::Algorithm;
use skyline_core::SkylineConfig;
use skyline_data::PartitionerKind;

use crate::catalog::DatasetEntry;
use crate::query::QueryKind;

/// How a query will be (or was) answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Served from the result cache; nothing was recomputed.
    Cached,
    /// Empty dataset or no discriminating dimensions: the answer is
    /// definitional (every live row, or none).
    Trivial,
    /// One effective dimension: read the minima off the catalog's
    /// sorted projection.
    MinScan {
        /// The scanned dimension.
        dim: usize,
    },
    /// Patch a prior-version cached result forward through the
    /// dataset's mutation delta instead of recomputing.
    Delta {
        /// The version whose cached result seeds the patch.
        from_version: u64,
    },
    /// Run a skyline algorithm over the (projected) data.
    Algorithm(Algorithm),
    /// Fan per-shard skylines out over the dataset's attached
    /// [`ShardedStore`](skyline_data::ShardedStore), then merge the
    /// local skylines with witness-point pruning.
    Sharded {
        /// Number of shards the store holds.
        k: usize,
        /// The partitioning family the store was built with.
        partitioner: PartitionerKind,
    },
}

impl Strategy {
    /// The algorithm this strategy runs, if any.
    pub fn algorithm(&self) -> Option<Algorithm> {
        match self {
            Strategy::Algorithm(a) => Some(*a),
            _ => None,
        }
    }
}

/// The planner's full decision for one query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// How the query is answered.
    pub strategy: Strategy,
    /// Thread lanes the execution may use.
    pub threads: usize,
    /// Algorithm tuning (α etc.) for `Strategy::Algorithm` plans.
    pub config: SkylineConfig,
    /// The dimensions that actually participate after dropping
    /// constant ones (ascending, full-space indices). Delta plans keep
    /// every requested dimension: the prior result they patch was
    /// defined over all of them, and a once-constant dimension may
    /// have grown discriminating since.
    pub effective_dims: Vec<usize>,
    /// Skyline fraction observed on the catalog's sample (0..=1);
    /// `None` only when there was nothing to sample (trivial plans).
    pub sample_skyline_frac: Option<f32>,
    /// One-line human-readable justification.
    pub reason: &'static str,
    /// Every strategy the final cost comparison considered, with its
    /// estimated cost, the chosen one flagged. Empty for plans decided
    /// by an earlier structural rule (trivial, min-scan, delta, the
    /// sequential size tiers), where no cost comparison happens.
    pub candidates: Vec<PlanCandidate>,
    /// A cached **subspace** skyline usable as a pruning window for
    /// this (superspace) query: any live row strictly dominated on the
    /// query's dimensions by a member of that cached skyline cannot be
    /// in the answer and is dropped before the scan. `None` when no
    /// compatible entry was cached or the strategy does not scan.
    pub superspace_seed: Option<SuperspaceSeed>,
}

/// One strategy considered by the planner's final cost comparison,
/// surfaced in [`QueryTrace`](crate::QueryTrace) so `explain`-style
/// output can show what was rejected and at what estimated price.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCandidate {
    /// The candidate's stable strategy name (an
    /// [`Algorithm::name`](skyline_core::algo::Algorithm::name)).
    pub strategy: &'static str,
    /// Coarse estimated cost in dominance-test units. Comparable only
    /// within one plan's candidate list; informational — the decision
    /// itself is made by the planner's (feedback-refitted) rules.
    pub estimated_cost: f64,
    /// Whether this candidate became the plan.
    pub chosen: bool,
}

/// The coarse candidate cost sheet for a parallel-tier decision.
///
/// Estimates are in dominance-test units with `s = frac·n` as the
/// expected skyline size: BNL pays the full `n·s` window scan, SFS
/// halves it by sort order, BSkyTree prunes to a log factor, Q-Flow
/// divides the scan across threads plus per-block overhead, and Hybrid
/// additionally cuts comparisons by partitioning at a β-queue
/// pre-filter price.
fn candidate_costs(
    n: usize,
    frac: f32,
    threads: usize,
    chosen: &'static str,
    sharded: Option<f64>,
) -> Vec<PlanCandidate> {
    let n = n as f64;
    let t = threads.max(1) as f64;
    let s = (frac as f64 * n).max(1.0);
    let sheet = [
        ("bnl", n * s),
        ("sfs", 0.5 * n * s),
        ("bskytree", n * (s + 2.0).log2()),
        ("qflow", 0.5 * n * s / t + n),
        ("hybrid", 0.25 * n * s / t + 8.0 * n),
    ];
    sheet
        .into_iter()
        .map(|(strategy, estimated_cost)| PlanCandidate {
            strategy,
            estimated_cost,
            chosen: strategy == chosen,
        })
        .chain(sharded.map(|estimated_cost| PlanCandidate {
            strategy: "sharded",
            estimated_cost,
            chosen: chosen == "sharded",
        }))
        .collect()
}

/// Coarse cost of the sharded plan, from the **per-shard** live
/// counts: each shard pays a hybrid-style window scan over its own
/// rows (quadratic in the shard, which is where splitting wins), the
/// scatter pays one pass over `n`, and the merge pays an 8-lane
/// SIMD-batched all-candidates scan over the concatenated local
/// skylines (`c² / 16`: half the pairs by sort order, eight lanes per
/// test).
fn sharded_cost(lens: &[usize], frac: f32, threads: usize) -> f64 {
    let t = threads.max(1) as f64;
    let f = frac as f64;
    let n: f64 = lens.iter().map(|&l| l as f64).sum();
    let local: f64 = lens
        .iter()
        .map(|&l| {
            let li = l as f64;
            0.25 * li * (f * li).max(1.0)
        })
        .sum::<f64>()
        / t;
    let c: f64 = lens.iter().map(|&l| (f * l as f64).max(1.0)).sum();
    local + n + c * c / 16.0
}

impl QueryPlan {
    pub(crate) fn trivial(reason: &'static str) -> Self {
        QueryPlan {
            strategy: Strategy::Trivial,
            threads: 1,
            config: SkylineConfig::default(),
            effective_dims: Vec::new(),
            sample_skyline_frac: None,
            reason,
            candidates: Vec::new(),
            superspace_seed: None,
        }
    }

    pub(crate) fn cached(mut self) -> Self {
        self.strategy = Strategy::Cached;
        self.reason = "result cache hit";
        self
    }
}

/// A prior-version cached result the planner may patch forward: where
/// it lives and how big the accumulated mutation delta is.
#[derive(Debug, Clone, Copy)]
pub struct PriorResult {
    /// Version of the cached result.
    pub from_version: u64,
    /// Its skyline size (indices).
    pub len: usize,
    /// Rows inserted between that version and now (still live).
    pub inserted: usize,
    /// Rows deleted between that version and now (netted).
    pub deleted: usize,
}

/// Thresholds steering the planner. The defaults fall out of the
/// paper's evaluation plus the constant factors of this codebase; they
/// are exposed so deployments can re-tune from their own traces — or
/// let the [feedback loop](feedback) re-fit them online from observed
/// runtimes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// At or below this cardinality, BNL wins outright.
    pub tiny_n: usize,
    /// At or below this cardinality, SFS wins over parallel set-up.
    pub small_n: usize,
    /// Subspaces at or above this dimensionality always use Hybrid
    /// when parallel (partitioning pays off regardless of density).
    pub high_d: usize,
    /// Sampled skyline fraction above which Hybrid replaces Q-Flow.
    pub dense_frac: f32,
    /// Largest mutation delta (inserts + deletes) worth patching a
    /// cached result through instead of recomputing — both at query
    /// time (`Strategy::Delta`) and when the engine patches cache
    /// entries forward eagerly after a mutation batch.
    pub delta_cap: usize,
    /// Fitted Q-Flow block size; `None` defers to
    /// [`SkylineConfig::tuned`]. Installed by the feedback loop when
    /// observed runtimes show a different α winning on this machine.
    pub alpha_qflow: Option<usize>,
    /// Fitted Hybrid block size; `None` defers to
    /// [`SkylineConfig::tuned`].
    pub alpha_hybrid: Option<usize>,
    /// Smallest live cardinality at which an attached sharded store is
    /// used: below it, per-shard fan-out and merge overhead cannot pay
    /// for themselves against a single scan.
    pub sharded_min_n: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            tiny_n: 512,
            small_n: 8_192,
            high_d: 8,
            // The sample-level fraction runs well above the full-data
            // fraction (256 points have few dominators); 0.2 splits
            // correlated workloads (~0.15 at d = 4) from independent
            // and anticorrelated ones (0.2–0.9).
            dense_frac: 0.2,
            // An insert costs O(|SKY|·d), a delete of a member one
            // filtered pass over the data; 256 keeps the worst patch
            // well under any recomputation the tiers below would pick.
            delta_cap: 256,
            alpha_qflow: None,
            alpha_hybrid: None,
            // Below ~64k rows a single scan already fits in cache;
            // above it, per-shard working sets shrinking back under
            // the cache is exactly the sharded tier's win.
            sharded_min_n: 65_536,
        }
    }
}

/// A cached **subspace** skyline offered to the planner as a pruning
/// window for a superspace query: the entry's dimension mask is a
/// proper subset of the query's, its preference mask agrees on the
/// shared dimensions, and it was computed at the query's exact dataset
/// version — so every one of its members is live, and any live row one
/// of them strictly dominates on the *query's* dimensions is provably
/// outside the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperspaceSeed {
    /// Dimension mask of the cached subspace entry.
    pub dim_mask: u32,
    /// Number of skyline members cached under it.
    pub len: usize,
}

/// The adaptive planner: stateless decision logic over an atomically
/// swappable [`PlannerConfig`]. Safe to share across threads; each
/// planning pass snapshots the config once, so an [`install`]
/// (Planner::install) mid-flight never mixes old and new thresholds
/// within one decision.
///
/// [`install`]: Planner::install
#[derive(Debug, Default)]
pub struct Planner {
    cfg: RwLock<Arc<PlannerConfig>>,
}

impl Clone for Planner {
    fn clone(&self) -> Self {
        Self {
            cfg: RwLock::new(self.config()),
        }
    }
}

impl Planner {
    /// A planner with the given thresholds.
    pub fn new(cfg: PlannerConfig) -> Self {
        Self {
            cfg: RwLock::new(Arc::new(cfg)),
        }
    }

    /// A consistent snapshot of the live thresholds.
    pub fn config(&self) -> Arc<PlannerConfig> {
        Arc::clone(&self.cfg.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Atomically replaces the live thresholds. Plans already being
    /// made keep the snapshot they took. Returns whether the config
    /// actually changed.
    pub fn install(&self, cfg: PlannerConfig) -> bool {
        let mut live = self.cfg.write().unwrap_or_else(|e| e.into_inner());
        if **live == cfg {
            return false;
        }
        *live = Arc::new(cfg);
        true
    }

    /// Plans a query over `entry` restricted to the canonical
    /// (sorted, deduplicated) `dims`, with `threads` lanes available.
    ///
    /// `max_mask` flags maximised dimensions; it does not influence the
    /// choice of algorithm (negation preserves every density property)
    /// but is needed to pick the right end of a sorted projection for
    /// min-scans.
    pub fn plan(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        threads: usize,
    ) -> QueryPlan {
        self.plan_with_prior(entry, dims, max_mask, threads, None)
    }

    /// Like [`plan`](Self::plan), but additionally offered a
    /// prior-version cached result: when the accumulated delta is
    /// small, patching it forward beats every recomputation tier.
    pub fn plan_with_prior(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        threads: usize,
        prior: Option<PriorResult>,
    ) -> QueryPlan {
        self.plan_query(entry, dims, max_mask, threads, prior, None)
    }

    /// The full planning entry point:
    /// [`plan_with_prior`](Self::plan_with_prior) plus an optional
    /// cached-subspace
    /// [`SuperspaceSeed`]. The seed never changes the strategy choice
    /// — pruning the scan's input is sound under every scanning
    /// strategy — but scanning plans carry its mask so the executor
    /// pre-filters through the cached result before the full scan.
    pub fn plan_query(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        threads: usize,
        prior: Option<PriorResult>,
        seed: Option<SuperspaceSeed>,
    ) -> QueryPlan {
        let mut plan = self.plan_inner(entry, dims, max_mask, threads, prior);
        if matches!(
            plan.strategy,
            Strategy::Algorithm(_) | Strategy::Sharded { .. }
        ) {
            plan.superspace_seed = seed;
        }
        plan
    }

    /// Plans a query of any [`QueryKind`]. Skyline queries take the
    /// full tiered decision of [`plan_query`](Self::plan_query);
    /// counting kinds (k-skyband, top-k dominating) use a reduced
    /// procedure because the structural shortcuts do not apply to
    /// them: a sorted projection yields minima but not dominator
    /// counts (no min-scan), the maintenance kernels patch membership
    /// but not counts (no delta), and a cached subspace skyline prunes
    /// rows that may still carry non-zero counts (no superspace seed).
    ///
    /// - **k-skyband** fans out over an attached sharded store when
    ///   the input is large enough (per-shard local skybands, counting
    ///   merge with exact carry-over); otherwise it runs the
    ///   sum-sorted counting kernel, which is SFS-shaped, so the plan
    ///   reports [`Algorithm::Sfs`].
    /// - **top-k dominating** always runs the counting kernel over the
    ///   whole input: dominated-counts add across shards, so a
    ///   local-merge decomposition cannot bound them and sharding is
    ///   never sound for this kind.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_kind(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        threads: usize,
        kind: QueryKind,
        prior: Option<PriorResult>,
        seed: Option<SuperspaceSeed>,
    ) -> QueryPlan {
        if kind.is_skyline() {
            return self.plan_query(entry, dims, max_mask, threads, prior, seed);
        }
        let cfg = self.config();
        let n = entry.live_len();
        if n == 0 {
            return QueryPlan::trivial("empty dataset");
        }
        if kind.k() == 0 {
            return QueryPlan::trivial("k = 0: the answer is empty by definition");
        }
        let stats = entry.stats();
        let effective: Vec<usize> = dims
            .iter()
            .copied()
            .filter(|&c| !stats.per_dim[c].is_constant())
            .collect();
        if effective.is_empty() {
            return QueryPlan::trivial("all selected dimensions are constant");
        }
        let frac = sample_skyline_frac(entry, &effective);
        if let (QueryKind::Skyband { .. }, Some(store)) = (kind, entry.sharded()) {
            if store.k() > 1 && n >= cfg.sharded_min_n {
                return QueryPlan {
                    strategy: Strategy::Sharded {
                        k: store.k(),
                        partitioner: store.partitioner_kind(),
                    },
                    threads: threads.max(1),
                    config: SkylineConfig::tuned(n / store.k(), 1),
                    effective_dims: effective,
                    sample_skyline_frac: Some(frac),
                    reason: "sharded store attached: per-shard local skybands, counting merge",
                    candidates: Vec::new(),
                    superspace_seed: None,
                };
            }
        }
        let reason = match kind {
            QueryKind::Skyband { .. } => "k-skyband: sum-sorted counting scan",
            _ => "top-k dominating: counting kernel over the negated input",
        };
        QueryPlan {
            strategy: Strategy::Algorithm(Algorithm::Sfs),
            threads: 1,
            config: SkylineConfig::default(),
            effective_dims: effective,
            sample_skyline_frac: Some(frac),
            reason,
            candidates: Vec::new(),
            superspace_seed: None,
        }
    }

    fn plan_inner(
        &self,
        entry: &DatasetEntry,
        dims: &[usize],
        max_mask: u32,
        threads: usize,
        prior: Option<PriorResult>,
    ) -> QueryPlan {
        let cfg = self.config();
        let n = entry.live_len();
        if n == 0 {
            return QueryPlan::trivial("empty dataset");
        }

        // 1. Constant dimensions never decide a dominance test.
        let stats = entry.stats();
        let effective: Vec<usize> = dims
            .iter()
            .copied()
            .filter(|&c| !stats.per_dim[c].is_constant())
            .collect();
        if effective.is_empty() {
            return QueryPlan::trivial("all selected dimensions are constant");
        }
        let d = effective.len();
        let threads = threads.max(1);
        // The sampled density is both a decision input (Q-Flow vs
        // Hybrid) and a feedback feature: every non-trivial plan
        // carries it so the observed runtime lands in the right
        // bucket. The sample is capped, so this is microseconds.
        let frac = sample_skyline_frac(entry, &effective);

        // 2. One effective dimension: the skyline is the set of minima,
        //    already sitting at one end of the sorted projection.
        if d == 1 {
            return QueryPlan {
                strategy: Strategy::MinScan { dim: effective[0] },
                threads: 1,
                config: SkylineConfig::default(),
                effective_dims: effective,
                sample_skyline_frac: Some(frac),
                reason: "one effective dimension: scan the sorted projection",
                candidates: Vec::new(),
                superspace_seed: None,
            };
        }

        // 3. A reachable prior result with a small delta: maintenance
        //    beats recomputation. Capped against both the configured
        //    ceiling and the live cardinality so a delta comparable to
        //    the dataset falls through to a fresh run.
        if let Some(p) = prior {
            let delta = p.inserted + p.deleted;
            if delta > 0 && delta <= cfg.delta_cap && delta * 4 <= n {
                return QueryPlan {
                    strategy: Strategy::Delta {
                        from_version: p.from_version,
                    },
                    threads: 1,
                    config: SkylineConfig::default(),
                    effective_dims: dims.to_vec(),
                    sample_skyline_frac: Some(frac),
                    reason: "small delta over a prior cached result",
                    candidates: Vec::new(),
                    superspace_seed: None,
                };
            }
        }

        // 4./5. Sequential baselines for small work.
        if n <= cfg.tiny_n {
            return QueryPlan {
                strategy: Strategy::Algorithm(Algorithm::Bnl),
                threads: 1,
                config: SkylineConfig::default(),
                effective_dims: effective,
                sample_skyline_frac: Some(frac),
                reason: "tiny input: window scan beats any setup cost",
                candidates: Vec::new(),
                superspace_seed: None,
            };
        }
        if n <= cfg.small_n {
            return QueryPlan {
                strategy: Strategy::Algorithm(Algorithm::Sfs),
                threads: 1,
                config: SkylineConfig::default(),
                effective_dims: effective,
                sample_skyline_frac: Some(frac),
                reason: "small input: sort-filter-skyline, no parallel setup",
                candidates: Vec::new(),
                superspace_seed: None,
            };
        }

        // 5b. An attached sharded store on a large input: per-shard
        //     scans over cache-resident working sets, then a
        //     witness-pruned SIMD merge. Priced from the per-shard
        //     live counts; the quadratic window term splitting across
        //     shards is what the sheet's "sharded" row models.
        if let Some(store) = entry.sharded() {
            if store.k() > 1 && n >= cfg.sharded_min_n {
                let lens: Vec<usize> = store.stats().iter().map(|s| s.live).collect();
                let cost = sharded_cost(&lens, frac, threads);
                let mut config = SkylineConfig::tuned(n / store.k(), 1);
                if let Some(a) = cfg.alpha_qflow {
                    config.alpha_qflow = a;
                }
                if let Some(a) = cfg.alpha_hybrid {
                    config.alpha_hybrid = a;
                }
                return QueryPlan {
                    strategy: Strategy::Sharded {
                        k: store.k(),
                        partitioner: store.partitioner_kind(),
                    },
                    threads,
                    config,
                    effective_dims: effective,
                    sample_skyline_frac: Some(frac),
                    reason: "sharded store attached: cache-resident per-shard scans, witness-pruned merge",
                    candidates: candidate_costs(n, frac, threads, "sharded", Some(cost)),
                    superspace_seed: None,
                };
            }
        }

        // 6. No parallelism available: best sequential algorithm.
        if threads == 1 {
            return QueryPlan {
                strategy: Strategy::Algorithm(Algorithm::BSkyTree),
                threads: 1,
                config: SkylineConfig::default(),
                effective_dims: effective,
                sample_skyline_frac: Some(frac),
                reason: "single thread: BSkyTree is the best sequential algorithm",
                candidates: Vec::new(),
                superspace_seed: None,
            };
        }

        // 7. Parallel: split on the sampled skyline density, with α
        //    from the workload-tuned formula unless the feedback loop
        //    installed a fitted override.
        let mut config = SkylineConfig::tuned(n, threads);
        if let Some(a) = cfg.alpha_qflow {
            config.alpha_qflow = a;
        }
        if let Some(a) = cfg.alpha_hybrid {
            config.alpha_hybrid = a;
        }
        let (algo, reason) = if d >= cfg.high_d {
            (
                Algorithm::Hybrid,
                "high-dimensional subspace: partitioning and M(S) pay off",
            )
        } else if frac > cfg.dense_frac {
            (
                Algorithm::Hybrid,
                "dense sampled skyline: partition to cut comparisons",
            )
        } else {
            (
                Algorithm::QFlow,
                "sparse sampled skyline: shared-skyline block flow",
            )
        };
        let _ = max_mask; // direction never changes the plan, see doc
        let chosen = match algo {
            Algorithm::Hybrid => "hybrid",
            _ => "qflow",
        };
        QueryPlan {
            strategy: Strategy::Algorithm(algo),
            threads,
            config,
            effective_dims: effective,
            sample_skyline_frac: Some(frac),
            reason,
            candidates: candidate_costs(n, frac, threads, chosen, None),
            superspace_seed: None,
        }
    }
}

/// Fraction of the catalog's sample that is skyline within the sample,
/// under dominance restricted to `dims`. An upper-bound proxy for the
/// full dataset's skyline fraction (density shrinks with n), cheap
/// enough to run on every planning pass: O(sample²·|dims|).
fn sample_skyline_frac(entry: &DatasetEntry, dims: &[usize]) -> f32 {
    let sample = &entry.stats().sample;
    if sample.len() < 2 {
        return 1.0;
    }
    use skyline_core::dominance::strictly_dominates_on;
    let mut survivors = 0usize;
    'outer: for &i in sample {
        let p = entry.point(i);
        for &j in sample {
            if i != j && strictly_dominates_on(entry.point(j), p, dims) {
                continue 'outer;
            }
        }
        survivors += 1;
    }
    survivors as f32 / sample.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use skyline_core::verify;
    use skyline_data::{generate, Dataset, Distribution};
    use skyline_parallel::ThreadPool;

    fn entry_of(data: Dataset) -> std::sync::Arc<DatasetEntry> {
        let catalog = Catalog::new();
        let pool = ThreadPool::new(2);
        catalog.register("t", data, &pool)
    }

    #[test]
    fn tiny_goes_bnl_small_goes_sfs() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let tiny = entry_of(generate(Distribution::Independent, 300, 3, 7, &pool));
        let plan = planner.plan(&tiny, &[0, 1, 2], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Bnl));
        assert!(
            plan.sample_skyline_frac.is_some(),
            "frac must be bucketable"
        );

        let small = entry_of(generate(Distribution::Independent, 5_000, 3, 7, &pool));
        let plan = planner.plan(&small, &[0, 1, 2], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Sfs));
        assert_eq!(plan.threads, 1);
        assert!(plan.sample_skyline_frac.is_some());
    }

    #[test]
    fn single_thread_prefers_bskytree() {
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 20_000, 4, 7, &pool));
        let plan = Planner::default().plan(&e, &[0, 1, 2, 3], 0, 1);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::BSkyTree));
        assert!(plan.sample_skyline_frac.is_some());
    }

    #[test]
    fn density_splits_qflow_and_hybrid() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        // Correlated data: minuscule skyline → Q-Flow.
        let corr = entry_of(generate(Distribution::Correlated, 20_000, 4, 7, &pool));
        let plan = planner.plan(&corr, &[0, 1, 2, 3], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::QFlow));
        assert!(plan.sample_skyline_frac.unwrap() <= planner.config().dense_frac);

        // Anticorrelated data: huge skyline → Hybrid.
        let anti = entry_of(generate(Distribution::Anticorrelated, 20_000, 6, 7, &pool));
        let plan = planner.plan(&anti, &[0, 1, 2, 3, 4, 5], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Hybrid));
        assert!(plan.sample_skyline_frac.unwrap() > planner.config().dense_frac);
        // α was tuned down from the paper's 1M-point default.
        assert!(plan.config.alpha_hybrid <= SkylineConfig::default().alpha_hybrid);
    }

    #[test]
    fn high_d_forces_hybrid() {
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Correlated, 20_000, 10, 7, &pool));
        let plan = Planner::default().plan(&e, &(0..10).collect::<Vec<_>>(), 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Hybrid));
    }

    #[test]
    fn constant_dims_are_dropped() {
        let _pool = ThreadPool::new(2);
        let mut rows = Vec::new();
        for i in 0..1_000 {
            rows.push(vec![5.0, i as f32, (1_000 - i) as f32]);
        }
        let e = entry_of(Dataset::from_rows(&rows).unwrap());
        // Dim 0 is constant: a {0,1} query degenerates to a 1-d scan.
        let plan = Planner::default().plan(&e, &[0, 1], 0, 4);
        assert_eq!(plan.strategy, Strategy::MinScan { dim: 1 });
        assert!(plan.sample_skyline_frac.is_some());
        // All-constant selection is trivial.
        let plan = Planner::default().plan(&e, &[0], 0, 4);
        assert_eq!(plan.strategy, Strategy::Trivial);
        assert!(plan.sample_skyline_frac.is_none());
        // Dims 1+2 survive.
        let plan = Planner::default().plan(&e, &[0, 1, 2], 0, 4);
        assert_eq!(plan.effective_dims, vec![1, 2]);
    }

    #[test]
    fn small_delta_over_prior_wins_every_tier() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 20_000, 4, 7, &pool));
        let prior = PriorResult {
            from_version: 3,
            len: 120,
            inserted: 2,
            deleted: 1,
        };
        let plan = planner.plan_with_prior(&e, &[0, 1, 2, 3], 0, 4, Some(prior));
        assert_eq!(plan.strategy, Strategy::Delta { from_version: 3 });
        assert_eq!(plan.effective_dims, vec![0, 1, 2, 3]);
        assert_eq!(plan.threads, 1);
        assert!(plan.sample_skyline_frac.is_some(), "delta plans bucket too");
    }

    #[test]
    fn oversized_or_empty_delta_falls_through() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 20_000, 4, 7, &pool));
        // Delta above the cap: recompute.
        let big = PriorResult {
            from_version: 3,
            len: 120,
            inserted: planner.config().delta_cap + 1,
            deleted: 0,
        };
        let plan = planner.plan_with_prior(&e, &[0, 1, 2, 3], 0, 4, Some(big));
        assert!(matches!(plan.strategy, Strategy::Algorithm(_)));
        // Empty delta means the prior IS current; the cache probe
        // handles that — the planner must not loop through Delta.
        let none = PriorResult {
            from_version: 3,
            len: 120,
            inserted: 0,
            deleted: 0,
        };
        let plan = planner.plan_with_prior(&e, &[0, 1, 2, 3], 0, 4, Some(none));
        assert!(matches!(plan.strategy, Strategy::Algorithm(_)));
        // A delta comparable to a small dataset: recompute too.
        let small = entry_of(generate(Distribution::Independent, 300, 3, 7, &pool));
        let wide = PriorResult {
            from_version: 1,
            len: 10,
            inserted: 100,
            deleted: 0,
        };
        let plan = planner.plan_with_prior(&small, &[0, 1, 2], 0, 4, Some(wide));
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Bnl));
    }

    #[test]
    fn minscan_outranks_delta() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 5_000, 3, 7, &pool));
        let prior = PriorResult {
            from_version: 1,
            len: 4,
            inserted: 1,
            deleted: 0,
        };
        let plan = planner.plan_with_prior(&e, &[2], 0, 4, Some(prior));
        assert_eq!(plan.strategy, Strategy::MinScan { dim: 2 });
    }

    #[test]
    fn sample_estimator_matches_reference_on_the_sample() {
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 2_000, 3, 11, &pool));
        let dims = [0usize, 2];
        // Build the sample as its own dataset and compare against the
        // definitional subspace skyline.
        let sample_rows: Vec<Vec<f32>> = e
            .stats()
            .sample
            .iter()
            .map(|&i| e.point(i).to_vec())
            .collect();
        let sample_ds = Dataset::from_rows(&sample_rows).unwrap();
        let expect =
            verify::naive_skyline_on(&sample_ds, &dims).len() as f32 / sample_rows.len() as f32;
        let got = sample_skyline_frac(&e, &dims);
        assert!((got - expect).abs() < 1e-6);
    }

    #[test]
    fn install_swaps_thresholds_atomically() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 5_000, 3, 7, &pool));
        assert_eq!(
            planner.plan(&e, &[0, 1, 2], 0, 4).strategy,
            Strategy::Algorithm(Algorithm::Sfs)
        );
        // Raise the BNL ceiling above n: the same query replans to BNL.
        let mut cfg = (*planner.config()).clone();
        cfg.tiny_n = 10_000;
        assert!(planner.install(cfg.clone()));
        assert!(!planner.install(cfg), "identical config is a no-op");
        assert_eq!(
            planner.plan(&e, &[0, 1, 2], 0, 4).strategy,
            Strategy::Algorithm(Algorithm::Bnl)
        );
        // A clone snapshots the live config at clone time.
        let snap = planner.clone();
        assert_eq!(snap.config().tiny_n, 10_000);
    }

    #[test]
    fn alpha_overrides_replace_tuned_values() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let anti = entry_of(generate(Distribution::Anticorrelated, 20_000, 6, 7, &pool));
        let corr = entry_of(generate(Distribution::Correlated, 20_000, 4, 7, &pool));
        let mut cfg = (*planner.config()).clone();
        cfg.alpha_hybrid = Some(128);
        cfg.alpha_qflow = Some(4_096);
        planner.install(cfg);
        let plan = planner.plan(&anti, &[0, 1, 2, 3, 4, 5], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::Hybrid));
        assert_eq!(plan.config.alpha_hybrid, 128);
        let plan = planner.plan(&corr, &[0, 1, 2, 3], 0, 4);
        assert_eq!(plan.strategy, Strategy::Algorithm(Algorithm::QFlow));
        assert_eq!(plan.config.alpha_qflow, 4_096);
    }

    #[test]
    fn counting_kinds_skip_structural_shortcuts() {
        let planner = Planner::default();
        let pool = ThreadPool::new(2);
        let e = entry_of(generate(Distribution::Independent, 20_000, 4, 7, &pool));
        // A tempting delta prior is ignored for counting kinds.
        let prior = PriorResult {
            from_version: 3,
            len: 120,
            inserted: 2,
            deleted: 1,
        };
        for kind in [
            QueryKind::Skyband { k: 3 },
            QueryKind::TopKDominating { k: 5 },
        ] {
            let plan = planner.plan_kind(&e, &[0, 1, 2, 3], 0, 4, kind, Some(prior), None);
            assert_eq!(
                plan.strategy,
                Strategy::Algorithm(Algorithm::Sfs),
                "{kind:?}"
            );
            assert!(plan.superspace_seed.is_none());
            assert!(plan.sample_skyline_frac.is_some());
        }
        // k = 0 is definitionally empty.
        let plan = planner.plan_kind(
            &e,
            &[0, 1, 2, 3],
            0,
            4,
            QueryKind::Skyband { k: 0 },
            None,
            None,
        );
        assert_eq!(plan.strategy, Strategy::Trivial);
        // Skyline kind routes through the full tiered procedure.
        let plan = planner.plan_kind(
            &e,
            &[0, 1, 2, 3],
            0,
            4,
            QueryKind::Skyline,
            Some(prior),
            None,
        );
        assert_eq!(plan.strategy, Strategy::Delta { from_version: 3 });
    }
}
