//! Online re-fitting of the planner's thresholds from observed
//! runtimes — the feedback loop closing the gap between the paper's
//! machine-specific constants and whatever hardware and workload this
//! engine actually runs on.
//!
//! ## How it works
//!
//! Every completed query yields an [`Observation`]: the strategy that
//! ran, the live cardinality, the effective dimensionality, the
//! preference mask, the planner's sampled skyline fraction, the α the
//! algorithm ran with, and the measured runtime. [`FeedbackLoop::record`]
//! folds each observation into a **bucketed running aggregate** —
//! recording is one short mutex-protected hash-map update, cheap enough
//! for every query to pay.
//!
//! ### Bucketing
//!
//! Observations land in buckets keyed by
//! `(plan kind, ⌊log₂ n⌋, d, |pref mask|, ⌊8·frac⌋, log₂ α)`:
//!
//! * cardinality is bucketed by its floor log₂ — the planner's
//!   thresholds are crossover points on an exponential axis, so octave
//!   resolution is exactly what re-fitting them needs;
//! * the sampled skyline fraction is bucketed into eighths, matching
//!   the granularity at which `dense_frac` is worth moving;
//! * the preference mask contributes its popcount (how many dimensions
//!   are maximised), which is what affects cost, rather than the raw
//!   mask, which would explode the key space;
//! * α contributes its log₂ so block-size candidates can be compared.
//!
//! Each bucket keeps `(count, Σ runtime, Σ rows)` — enough for mean
//! runtime and per-row throughput, nothing that grows with the stream.
//!
//! ### Refit cadence
//!
//! [`FeedbackLoop::maybe_refit`] is called after each recorded
//! observation. It consults the [`Clock`]: if less than
//! [`FeedbackConfig::refit_interval`] has passed since the last refit,
//! it returns immediately (one atomic load). When a refit is due, a
//! single caller is elected by compare-and-swap (concurrent queries
//! never stampede the fitter), the aggregates are fitted into a fresh
//! [`PlannerConfig`], and — only if something actually moved — the new
//! config is [installed](crate::Planner::install) atomically. In-flight
//! plans keep the snapshot they took; there is no locking on the plan
//! path.
//!
//! ### Hysteresis
//!
//! Every comparison the fitter makes uses a multiplicative band
//! ([`FeedbackConfig::hysteresis`]): strategy A only "wins" a bucket
//! against strategy B when `mean(A) · (1 + band) < mean(B)`. Two
//! strategies within the band produce no winner, no threshold movement,
//! and therefore no plan-choice oscillation — the planner keeps doing
//! whatever it already does until the evidence is decisive. Buckets
//! with fewer than [`FeedbackConfig::min_observations`] samples are
//! ignored entirely.
//!
//! ### Exploration
//!
//! The α fitter can only compare block sizes that plans actually ran
//! with — and plans run with the incumbent α, so without intervention
//! the evidence never widens. Every
//! [`FeedbackConfig::explore_every`]-th refit therefore *perturbs* the
//! incumbent block size by one log₂ step (direction alternating on a
//! deterministic exploration counter — no wall clock, no randomness),
//! installs the perturbed value for exactly one refit interval, and
//! rolls it back at the next refit. Observations gathered under the
//! perturbed α land in their own bucket, so later fits see at least two
//! block sizes and can move the override on evidence (under the usual
//! hysteresis band). Set `explore_every` to 0 to disable.
//!
//! ### The Clock seam
//!
//! All of the above is driven through the [`Clock`] trait rather than
//! `Instant::now()`. Production engines use
//! [`MonotonicClock`](crate::MonotonicClock); tests hand the engine a
//! [`ManualClock`](crate::ManualClock) and advance it explicitly, so
//! every refit decision — due or not due, elected or skipped, installed
//! or held back by hysteresis — is exact and reproducible, with no
//! sleeps and no timing flakes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use skyline_core::algo::Algorithm;

use crate::clock::Clock;
use crate::planner::{Planner, PlannerConfig, QueryPlan, Strategy};
use crate::telemetry::QueueWaitHistograms;

/// Knobs for the [`FeedbackLoop`], carried by
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackConfig {
    /// Master switch. Off (the default) means the engine records
    /// nothing and the planner keeps its static thresholds.
    pub enabled: bool,
    /// Minimum time between refit passes.
    pub refit_interval: Duration,
    /// A bucket participates in fitting only once it has at least this
    /// many observations.
    pub min_observations: u64,
    /// Multiplicative hysteresis band: a strategy must be cheaper by
    /// this fraction to win a bucket. `0.15` means "at least 15 %
    /// faster or it's a tie".
    pub hysteresis: f32,
    /// Every this-many-th refit perturbs the incumbent α by ±1 log₂
    /// step for one refit interval, so the fitter sees block sizes
    /// other than the one plans keep running with (see the module docs,
    /// "Exploration"). `0` disables exploration.
    pub explore_every: u32,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            refit_interval: Duration::from_secs(2),
            min_observations: 16,
            hysteresis: 0.15,
            explore_every: 8,
        }
    }
}

impl FeedbackConfig {
    /// An enabled config with the default cadence and band.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// The kind of plan an observation describes — [`Strategy`] with the
/// algorithm flattened in and version details dropped, so it can key a
/// bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Served from the result cache.
    Cached,
    /// Definitional answer, nothing computed.
    Trivial,
    /// Sorted-projection scan.
    MinScan,
    /// Delta maintenance over a prior cached result.
    Delta,
    /// Per-shard fan-out over an attached sharded store, merged with
    /// witness pruning.
    Sharded,
    /// A full algorithm run.
    Algo(Algorithm),
}

impl From<&Strategy> for PlanKind {
    fn from(s: &Strategy) -> Self {
        match s {
            Strategy::Cached => PlanKind::Cached,
            Strategy::Trivial => PlanKind::Trivial,
            Strategy::MinScan { .. } => PlanKind::MinScan,
            Strategy::Delta { .. } => PlanKind::Delta,
            Strategy::Sharded { .. } => PlanKind::Sharded,
            Strategy::Algorithm(a) => PlanKind::Algo(*a),
        }
    }
}

impl PlanKind {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlanKind::Cached => "cache",
            PlanKind::Trivial => "trivial",
            PlanKind::MinScan => "min-scan",
            PlanKind::Delta => "delta",
            PlanKind::Sharded => "sharded",
            PlanKind::Algo(a) => a.name(),
        }
    }
}

/// One completed query, as the feedback loop sees it.
#[derive(Debug, Clone)]
pub struct Observation {
    /// What ran.
    pub kind: PlanKind,
    /// Live rows at execution time.
    pub n: usize,
    /// Effective (discriminating) dimensionality.
    pub d: usize,
    /// Bitmask of maximised dimensions.
    pub max_mask: u32,
    /// The planner's sampled skyline fraction, when it sampled.
    pub sample_skyline_frac: Option<f32>,
    /// The block size the algorithm ran with (parallel plans only).
    pub alpha: Option<usize>,
    /// Measured **compute** runtime: plan execution only, queueing
    /// excluded. This is the value every threshold fit reads.
    pub runtime: Duration,
    /// Time the query spent in the admission queue before running
    /// (zero for directly executed or cache-short-circuited queries).
    /// Informational: wait telemetry lives in the engine's
    /// `session.queue_wait` histograms (the single source
    /// [`FeedbackStats::queue_wait`] is derived from), and is **never**
    /// folded into the fitted runtimes — a loaded queue must not
    /// masquerade as a slow algorithm.
    pub queue_wait: Duration,
}

impl Observation {
    /// Builds the observation for an executed plan: kind, density, and
    /// α are read off the plan; `n` and the mask come from the query's
    /// prepared context.
    pub fn from_plan(plan: &QueryPlan, n: usize, max_mask: u32, runtime: Duration) -> Self {
        let kind = PlanKind::from(&plan.strategy);
        let alpha = match kind {
            PlanKind::Algo(Algorithm::QFlow) => Some(plan.config.alpha_qflow),
            PlanKind::Algo(Algorithm::Hybrid) => Some(plan.config.alpha_hybrid),
            _ => None,
        };
        Self {
            kind,
            n,
            d: plan.effective_dims.len(),
            max_mask,
            sample_skyline_frac: plan.sample_skyline_frac,
            alpha,
            runtime,
            queue_wait: Duration::ZERO,
        }
    }

    /// Stamps the time the query waited in the admission queue before
    /// its plan ran.
    pub fn queued(mut self, queue_wait: Duration) -> Self {
        self.queue_wait = queue_wait;
        self
    }
}

/// Sentinel for "feature absent" in a bucket key slot.
const NONE_BUCKET: u8 = u8::MAX;

/// Number of skyline-fraction buckets (eighths of `[0, 1]`).
const FRAC_BUCKETS: u8 = 8;

/// Hard cap on distinct buckets; past it, observations for brand-new
/// shapes are still counted globally but open no new bucket. Far above
/// anything a real workload produces — a safety valve, not a budget.
const MAX_BUCKETS: usize = 4096;

/// Bounds the fitter never crosses, whatever the observations say.
const TINY_N_BOUNDS: (usize, usize) = (64, 1 << 15);
const SMALL_N_BOUNDS: (usize, usize) = (256, 1 << 17);
const DENSE_FRAC_BOUNDS: (f32, f32) = (0.01, 0.95);
const DELTA_CAP_BOUNDS: (usize, usize) = (16, 4096);
/// log₂ bounds exploration keeps a perturbed α within (64 .. 1 Mi).
const ALPHA_LOG2_BOUNDS: (u8, u8) = (6, 20);

fn n_bucket(n: usize) -> u8 {
    (usize::BITS - 1).saturating_sub(n.leading_zeros()).min(62) as u8
}

fn frac_bucket(frac: Option<f32>) -> u8 {
    match frac {
        Some(f) => ((f.clamp(0.0, 1.0) * FRAC_BUCKETS as f32) as u8).min(FRAC_BUCKETS - 1),
        None => NONE_BUCKET,
    }
}

fn alpha_bucket(alpha: Option<usize>) -> u8 {
    match alpha {
        Some(a) => n_bucket(a.max(1)),
        None => NONE_BUCKET,
    }
}

/// Identity of one aggregate bucket. See the module docs for the
/// semantics of each slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BucketKey {
    kind: PlanKind,
    n_log2: u8,
    d: u8,
    max_prefs: u8,
    frac: u8,
    alpha_log2: u8,
}

impl BucketKey {
    fn of(obs: &Observation) -> Self {
        Self {
            kind: obs.kind,
            n_log2: n_bucket(obs.n.max(1)),
            d: obs.d.min(NONE_BUCKET as usize) as u8,
            max_prefs: obs.max_mask.count_ones() as u8,
            frac: frac_bucket(obs.sample_skyline_frac),
            alpha_log2: alpha_bucket(obs.alpha),
        }
    }
}

/// Constant-size running aggregate of one bucket.
#[derive(Debug, Clone, Copy, Default)]
struct Aggregate {
    count: u64,
    total_ns: u64,
    total_rows: u64,
}

impl Aggregate {
    fn fold(&mut self, obs: &Observation) {
        self.count += 1;
        self.total_ns = self
            .total_ns
            .saturating_add(obs.runtime.as_nanos().min(u64::MAX as u128) as u64);
        self.total_rows = self.total_rows.saturating_add(obs.n as u64);
    }

    fn mean_ns(&self) -> f64 {
        self.total_ns as f64 / self.count.max(1) as f64
    }

    fn ns_per_row(&self) -> f64 {
        self.total_ns as f64 / self.total_rows.max(1) as f64
    }
}

/// Counters describing the loop's activity, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    /// Observations recorded.
    pub observations: u64,
    /// Completed queries that waited a nonzero time in the admission
    /// queue, read off the shared `session.queue_wait` histograms
    /// ([`QueueWaitHistograms`]) — the loop keeps no wait tally of its
    /// own.
    pub queued_observations: u64,
    /// Total admission-queue wait across those completions, from the
    /// same histograms. Telemetry only: queue wait never enters the
    /// bucket aggregates, so fits see pure compute time.
    pub queue_wait: Duration,
    /// Fit passes run (time-gated or forced).
    pub refits: u64,
    /// Fit passes that actually changed the live config.
    pub installs: u64,
    /// α explorations performed (each lasts one refit interval).
    pub explorations: u64,
    /// Distinct aggregate buckets currently held.
    pub buckets: usize,
}

/// The recorder + refitter. One per engine; shared behind an `Arc` so
/// tests and tooling can inject observations and force refits.
#[derive(Debug)]
pub struct FeedbackLoop {
    cfg: FeedbackConfig,
    clock: Arc<dyn Clock>,
    buckets: Mutex<HashMap<BucketKey, Aggregate>>,
    /// Clock reading (ns) of the last refit election.
    last_refit_ns: AtomicU64,
    observations: AtomicU64,
    /// The engine-shared per-class queue-wait histograms; the single
    /// source of the wait aggregates [`stats`](Self::stats) reports.
    waits: Arc<QueueWaitHistograms>,
    refits: AtomicU64,
    installs: AtomicU64,
    explorations: AtomicU64,
    /// Saved pre-exploration α overrides `[qflow, hybrid]`: `Some(v)`
    /// means an exploration is standing and `v` must be restored at the
    /// next refit.
    explore_restore: Mutex<[Option<Option<usize>>; 2]>,
}

impl FeedbackLoop {
    /// A loop reading time from `clock`, with its own (private)
    /// queue-wait histograms. An engine shares its histograms instead
    /// via [`with_waits`](Self::with_waits).
    pub fn new(cfg: FeedbackConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_waits(cfg, clock, Arc::new(QueueWaitHistograms::new()))
    }

    /// A loop whose wait aggregates read from the caller's shared
    /// `session.queue_wait` histograms.
    pub fn with_waits(
        cfg: FeedbackConfig,
        clock: Arc<dyn Clock>,
        waits: Arc<QueueWaitHistograms>,
    ) -> Self {
        Self {
            cfg,
            clock,
            buckets: Mutex::new(HashMap::new()),
            last_refit_ns: AtomicU64::new(0),
            observations: AtomicU64::new(0),
            waits,
            refits: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            explorations: AtomicU64::new(0),
            explore_restore: Mutex::new([None, None]),
        }
    }

    /// The queue-wait histograms this loop derives its wait stats from.
    pub fn waits(&self) -> &Arc<QueueWaitHistograms> {
        &self.waits
    }

    /// The loop's configuration.
    pub fn config(&self) -> &FeedbackConfig {
        &self.cfg
    }

    /// The loop's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Folds one observation into its bucket. One short lock; constant
    /// work.
    pub fn record(&self, obs: Observation) {
        self.observations.fetch_add(1, Ordering::Relaxed);
        // Queue wait stays out of the aggregates entirely: the fit must
        // compare algorithms on compute time, not on how congested the
        // admission queue happened to be. Wait telemetry lives in the
        // shared `session.queue_wait` histograms, written at ticket
        // completion.
        let key = BucketKey::of(&obs);
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        if buckets.len() >= MAX_BUCKETS && !buckets.contains_key(&key) {
            return;
        }
        buckets.entry(key).or_default().fold(&obs);
    }

    /// True when the refit interval has elapsed since the last refit.
    pub fn due(&self) -> bool {
        let now = self.clock.now().as_nanos().min(u64::MAX as u128) as u64;
        let last = self.last_refit_ns.load(Ordering::Acquire);
        now.saturating_sub(last) >= self.cfg.refit_interval.as_nanos() as u64
    }

    /// Runs a refit if one is due, electing a single caller under
    /// concurrency. Returns whether the live config changed.
    pub fn maybe_refit(&self, planner: &Planner) -> bool {
        // One load serves both the due-ness check and the CAS expected
        // operand: a caller that raced past a winner's fresh timestamp
        // fails the CAS (its `last` is stale) instead of re-winning
        // against the new value and running a second fit in the same
        // interval.
        let now = self.clock.now().as_nanos().min(u64::MAX as u128) as u64;
        let last = self.last_refit_ns.load(Ordering::Acquire);
        if now.saturating_sub(last) < self.cfg.refit_interval.as_nanos() as u64 {
            return false;
        }
        // Elect exactly one refitter; losers simply continue serving.
        if self
            .last_refit_ns
            .compare_exchange(last, now.max(last + 1), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.run_fit(planner)
    }

    /// Runs a refit immediately, ignoring the cadence (tests, tooling,
    /// end-of-phase reporting). Returns whether the live config
    /// changed.
    pub fn refit_now(&self, planner: &Planner) -> bool {
        let now = self.clock.now().as_nanos().min(u64::MAX as u128) as u64;
        self.last_refit_ns.store(now, Ordering::Release);
        self.run_fit(planner)
    }

    fn run_fit(&self, planner: &Planner) -> bool {
        let refit_no = self.refits.fetch_add(1, Ordering::Relaxed);
        let current = planner.config();
        // Roll back a standing exploration first, so a perturbed α
        // lives exactly one refit interval and never becomes the
        // incumbent by inertia; the fit below re-adopts it only if the
        // gathered evidence is decisive.
        let mut base = (*current).clone();
        {
            let mut restore = self
                .explore_restore
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some(saved) = restore[0].take() {
                base.alpha_qflow = saved;
            }
            if let Some(saved) = restore[1].take() {
                base.alpha_hybrid = saved;
            }
        }
        let mut fitted = self.fit(&base);
        self.maybe_explore(&mut fitted, refit_no);
        let changed = planner.install(fitted);
        if changed {
            self.installs.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    /// Every `explore_every`-th refit, perturbs the incumbent α of each
    /// parallel algorithm by one log₂ step (direction alternating on
    /// the exploration counter — fully deterministic) and remembers the
    /// value to restore at the next refit.
    fn maybe_explore(&self, fitted: &mut PlannerConfig, refit_no: u64) {
        let every = self.cfg.explore_every as u64;
        if every == 0 || (refit_no + 1) % every != 0 {
            return;
        }
        let buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let qflow = incumbent_alpha_bucket(&buckets, Algorithm::QFlow);
        let hybrid = incumbent_alpha_bucket(&buckets, Algorithm::Hybrid);
        drop(buckets);
        if qflow.is_none() && hybrid.is_none() {
            return; // nothing observed yet — nothing to explore around
        }
        let up = self.explorations.fetch_add(1, Ordering::Relaxed) % 2 == 0;
        let mut restore = self
            .explore_restore
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(b) = qflow {
            restore[0] = Some(fitted.alpha_qflow);
            fitted.alpha_qflow = Some(1usize << perturbed_bucket(b, up));
        }
        if let Some(b) = hybrid {
            restore[1] = Some(fitted.alpha_hybrid);
            fitted.alpha_hybrid = Some(1usize << perturbed_bucket(b, up));
        }
    }

    /// Activity counters. The wait pair is read off the shared
    /// queue-wait histograms, not a loop-local tally.
    pub fn stats(&self) -> FeedbackStats {
        let (queued_observations, queue_wait) = self.waits.queued_total();
        FeedbackStats {
            observations: self.observations.load(Ordering::Relaxed),
            queued_observations,
            queue_wait,
            refits: self.refits.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            explorations: self.explorations.load(Ordering::Relaxed),
            buckets: self.buckets.lock().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// Drops every aggregate (tests and phase boundaries).
    pub fn clear(&self) {
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Fits a fresh config from the aggregates, starting from
    /// `current`. Pure: no state is modified, nothing is installed.
    pub fn fit(&self, current: &PlannerConfig) -> PlannerConfig {
        let buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let snapshot: Vec<(BucketKey, Aggregate)> = buckets
            .iter()
            .filter(|(_, a)| a.count >= self.cfg.min_observations)
            .map(|(k, a)| (*k, *a))
            .collect();
        drop(buckets);
        let band = self.cfg.hysteresis.max(0.0) as f64;
        let mut fitted = current.clone();

        // BNL / SFS crossover.
        let bnl = mean_by_n(&snapshot, PlanKind::Algo(Algorithm::Bnl));
        let sfs = mean_by_n(&snapshot, PlanKind::Algo(Algorithm::Sfs));
        if let Some(t) = fit_crossover(&bnl, &sfs, current.tiny_n, band) {
            fitted.tiny_n = t.clamp(TINY_N_BOUNDS.0, TINY_N_BOUNDS.1);
        }

        // SFS / parallel crossover: the parallel side is the cheaper of
        // Q-Flow and Hybrid per bucket.
        let qflow = mean_by_n(&snapshot, PlanKind::Algo(Algorithm::QFlow));
        let hybrid = mean_by_n(&snapshot, PlanKind::Algo(Algorithm::Hybrid));
        let parallel = merge_min(&qflow, &hybrid);
        if let Some(t) = fit_crossover(&sfs, &parallel, current.small_n, band) {
            fitted.small_n = t.clamp(SMALL_N_BOUNDS.0, SMALL_N_BOUNDS.1);
        }
        // The tiers must stay ordered whatever the independent fits
        // said.
        fitted.small_n = fitted.small_n.max(fitted.tiny_n);

        // Q-Flow / Hybrid density crossover.
        if let Some(f) = fit_dense_frac(&snapshot, current.dense_frac, band) {
            fitted.dense_frac = f.clamp(DENSE_FRAC_BOUNDS.0, DENSE_FRAC_BOUNDS.1);
        }

        // α refits: per algorithm, the observed block size with the
        // best per-row throughput, if it decisively beats the one plans
        // have been running with.
        if let Some(a) = fit_alpha(&snapshot, Algorithm::QFlow, band) {
            fitted.alpha_qflow = Some(a);
        }
        if let Some(a) = fit_alpha(&snapshot, Algorithm::Hybrid, band) {
            fitted.alpha_hybrid = Some(a);
        }

        // Delta cap: is patching still decisively cheaper than the
        // recomputation it displaces?
        if let Some(c) = fit_delta_cap(&snapshot, current.delta_cap, band) {
            fitted.delta_cap = c.clamp(DELTA_CAP_BOUNDS.0, DELTA_CAP_BOUNDS.1);
        }

        fitted
    }
}

/// Mean runtime of `kind` per cardinality bucket, aggregated over every
/// other key dimension (weighted by observation count).
fn mean_by_n(snapshot: &[(BucketKey, Aggregate)], kind: PlanKind) -> Vec<(u8, f64)> {
    let mut acc: HashMap<u8, Aggregate> = HashMap::new();
    for (key, agg) in snapshot {
        if key.kind == kind {
            let slot = acc.entry(key.n_log2).or_default();
            slot.count += agg.count;
            slot.total_ns = slot.total_ns.saturating_add(agg.total_ns);
        }
    }
    let mut out: Vec<(u8, f64)> = acc.into_iter().map(|(b, a)| (b, a.mean_ns())).collect();
    out.sort_by_key(|&(b, _)| b);
    out
}

/// Per-bucket elementwise minimum of two mean series.
fn merge_min(a: &[(u8, f64)], b: &[(u8, f64)]) -> Vec<(u8, f64)> {
    let mut acc: HashMap<u8, f64> = a.iter().copied().collect();
    for &(bucket, mean) in b {
        acc.entry(bucket)
            .and_modify(|m| *m = m.min(mean))
            .or_insert(mean);
    }
    let mut out: Vec<(u8, f64)> = acc.into_iter().collect();
    out.sort_by_key(|&(bucket, _)| bucket);
    out
}

/// `a` decisively cheaper than `b` under the hysteresis band.
fn wins(a: f64, b: f64, band: f64) -> bool {
    a * (1.0 + band) < b
}

/// Fits an `n ≤ threshold → small-side strategy` crossover from two
/// per-cardinality-bucket mean series. Returns `None` (keep the
/// current threshold) when the buckets the two strategies share carry
/// no decisive winner, or when the winners contradict each other
/// (small-side winning *above* a large-side win — noise, not signal).
fn fit_crossover(
    small: &[(u8, f64)],
    large: &[(u8, f64)],
    current: usize,
    band: f64,
) -> Option<usize> {
    let large_of: HashMap<u8, f64> = large.iter().copied().collect();
    let mut last_small_win: Option<u8> = None;
    let mut first_large_win: Option<u8> = None;
    for &(bucket, small_mean) in small {
        let Some(&large_mean) = large_of.get(&bucket) else {
            continue;
        };
        if wins(small_mean, large_mean, band) {
            last_small_win = Some(last_small_win.map_or(bucket, |b| b.max(bucket)));
        } else if wins(large_mean, small_mean, band) {
            first_large_win = Some(first_large_win.map_or(bucket, |b| b.min(bucket)));
        }
    }
    match (last_small_win, first_large_win) {
        (None, None) => None,
        // Small side wins everywhere observed: extend its reign to the
        // top of its highest winning bucket (never shrink below the
        // current threshold on one-sided evidence).
        (Some(s), None) => Some(current.max((1usize << (s + 1)) - 1)),
        // Large side wins everywhere observed: pull the threshold
        // below its lowest winning bucket.
        (None, Some(f)) => Some(current.min((1usize << f) - 1)),
        // Clean crossover: boundary at the bottom of the large side's
        // first winning bucket.
        (Some(s), Some(f)) if f > s => Some((1usize << f) - 1),
        // Contradictory winners: keep the current threshold.
        _ => None,
    }
}

/// Fits `dense_frac` from Q-Flow vs Hybrid means per skyline-fraction
/// bucket (low fractions should favour Q-Flow, high ones Hybrid).
fn fit_dense_frac(snapshot: &[(BucketKey, Aggregate)], current: f32, band: f64) -> Option<f32> {
    let mut acc: HashMap<(PlanKind, u8), Aggregate> = HashMap::new();
    for (key, agg) in snapshot {
        if key.frac == NONE_BUCKET {
            continue;
        }
        if matches!(
            key.kind,
            PlanKind::Algo(Algorithm::QFlow) | PlanKind::Algo(Algorithm::Hybrid)
        ) {
            let slot = acc.entry((key.kind, key.frac)).or_default();
            slot.count += agg.count;
            slot.total_ns = slot.total_ns.saturating_add(agg.total_ns);
            slot.total_rows = slot.total_rows.saturating_add(agg.total_rows);
        }
    }
    let mut last_qflow_win: Option<u8> = None;
    let mut first_hybrid_win: Option<u8> = None;
    for bucket in 0..FRAC_BUCKETS {
        let q = acc.get(&(PlanKind::Algo(Algorithm::QFlow), bucket));
        let h = acc.get(&(PlanKind::Algo(Algorithm::Hybrid), bucket));
        let (Some(q), Some(h)) = (q, h) else { continue };
        // Compare per-row cost: the two strategies need not have seen
        // identically sized datasets within a fraction bucket.
        let (qm, hm) = (q.ns_per_row(), h.ns_per_row());
        if wins(qm, hm, band) {
            last_qflow_win = Some(last_qflow_win.map_or(bucket, |b| b.max(bucket)));
        } else if wins(hm, qm, band) {
            first_hybrid_win = Some(first_hybrid_win.map_or(bucket, |b| b.min(bucket)));
        }
    }
    let width = 1.0 / FRAC_BUCKETS as f32;
    match (last_qflow_win, first_hybrid_win) {
        (None, None) => None,
        (Some(q), None) => Some(current.max((q as f32 + 1.0) * width)),
        (None, Some(h)) => Some(current.min(h as f32 * width - width / 4.0)),
        (Some(q), Some(h)) if h > q => Some(h as f32 * width - width / 4.0),
        _ => None,
    }
}

/// The block-size bucket `algo` plans have mostly been running with
/// (ties break to the smaller α for determinism). Unlike the fitter
/// this reads *all* buckets — exploration wants to know what runs, not
/// what is statistically settled.
fn incumbent_alpha_bucket(buckets: &HashMap<BucketKey, Aggregate>, algo: Algorithm) -> Option<u8> {
    let mut acc: HashMap<u8, u64> = HashMap::new();
    for (key, agg) in buckets {
        if key.kind == PlanKind::Algo(algo) && key.alpha_log2 != NONE_BUCKET {
            *acc.entry(key.alpha_log2).or_default() += agg.count;
        }
    }
    acc.into_iter()
        .max_by(|(a, x), (b, y)| x.cmp(y).then(b.cmp(a)))
        .map(|(b, _)| b)
}

/// One log₂ step away from `bucket`, clamped to [`ALPHA_LOG2_BOUNDS`].
fn perturbed_bucket(bucket: u8, up: bool) -> u8 {
    if up {
        (bucket + 1).clamp(ALPHA_LOG2_BOUNDS.0, ALPHA_LOG2_BOUNDS.1)
    } else {
        bucket
            .saturating_sub(1)
            .clamp(ALPHA_LOG2_BOUNDS.0, ALPHA_LOG2_BOUNDS.1)
    }
}

/// Fits an α override for `algo`: the observed block-size bucket with
/// the best per-row throughput, provided it decisively beats the
/// block size plans have mostly been running with.
fn fit_alpha(snapshot: &[(BucketKey, Aggregate)], algo: Algorithm, band: f64) -> Option<usize> {
    let mut acc: HashMap<u8, Aggregate> = HashMap::new();
    for (key, agg) in snapshot {
        if key.kind == PlanKind::Algo(algo) && key.alpha_log2 != NONE_BUCKET {
            let slot = acc.entry(key.alpha_log2).or_default();
            slot.count += agg.count;
            slot.total_ns = slot.total_ns.saturating_add(agg.total_ns);
            slot.total_rows = slot.total_rows.saturating_add(agg.total_rows);
        }
    }
    if acc.len() < 2 {
        return None;
    }
    // Incumbent: the block size most plans actually used. Break count
    // ties and throughput ties by the smaller α for determinism.
    let incumbent = *acc
        .iter()
        .max_by(|(a, x), (b, y)| x.count.cmp(&y.count).then(b.cmp(a)))
        .expect("len >= 2")
        .0;
    let best = *acc
        .iter()
        .min_by(|(a, x), (b, y)| {
            x.ns_per_row()
                .partial_cmp(&y.ns_per_row())
                .expect("finite means")
                .then(a.cmp(b))
        })
        .expect("len >= 2")
        .0;
    if best != incumbent && wins(acc[&best].ns_per_row(), acc[&incumbent].ns_per_row(), band) {
        Some(1usize << best)
    } else {
        None
    }
}

/// Fits the delta cap: compares the mean delta-plan runtime against the
/// mean recomputation runtime over the cardinality buckets where delta
/// plans were observed. Patching must stay decisively cheaper than the
/// recomputation it displaces, with headroom — the cap grows only when
/// patching is ≥ 4× cheaper and shrinks as soon as the margin is gone.
fn fit_delta_cap(snapshot: &[(BucketKey, Aggregate)], current: usize, band: f64) -> Option<usize> {
    let mut delta = Aggregate::default();
    let mut delta_buckets: Vec<u8> = Vec::new();
    for (key, agg) in snapshot {
        if key.kind == PlanKind::Delta {
            delta.count += agg.count;
            delta.total_ns = delta.total_ns.saturating_add(agg.total_ns);
            delta_buckets.push(key.n_log2);
        }
    }
    if delta.count == 0 {
        return None;
    }
    let mut recompute = Aggregate::default();
    for (key, agg) in snapshot {
        if matches!(key.kind, PlanKind::Algo(_)) && delta_buckets.contains(&key.n_log2) {
            recompute.count += agg.count;
            recompute.total_ns = recompute.total_ns.saturating_add(agg.total_ns);
        }
    }
    if recompute.count == 0 {
        return None;
    }
    let (dm, rm) = (delta.mean_ns(), recompute.mean_ns());
    if !wins(dm, rm, band) {
        // Patching no longer pays: halve the window.
        Some(current / 2)
    } else if wins(dm * 4.0, rm, band) {
        // Patching is far cheaper than recomputation: widen the window.
        Some(current * 2)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn obs(
        kind: PlanKind,
        n: usize,
        frac: Option<f32>,
        alpha: Option<usize>,
        us: u64,
    ) -> Observation {
        Observation {
            kind,
            n,
            d: 4,
            max_mask: 0,
            sample_skyline_frac: frac,
            alpha,
            runtime: Duration::from_micros(us),
            queue_wait: Duration::ZERO,
        }
    }

    fn quick_loop(min_obs: u64) -> (FeedbackLoop, Arc<ManualClock>) {
        let clock = ManualClock::shared();
        let fb = FeedbackLoop::new(
            FeedbackConfig {
                enabled: true,
                refit_interval: Duration::from_secs(1),
                min_observations: min_obs,
                hysteresis: 0.15,
                explore_every: 0, // fitter tests want pure fits
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (fb, clock)
    }

    fn feed(fb: &FeedbackLoop, o: Observation, times: u64) {
        for _ in 0..times {
            fb.record(o.clone());
        }
    }

    #[test]
    fn queue_wait_is_telemetry_only_and_never_pollutes_the_fit() {
        let (fb, _clock) = quick_loop(1);
        // Two observations of the same shape and compute runtime; one
        // waited 5 ms in the admission queue, the other didn't. The
        // wait reaches the stats through the shared histograms (the
        // engine records them at ticket completion), never through the
        // observation itself.
        let base = obs(PlanKind::Algo(Algorithm::Bnl), 4_000, Some(0.2), None, 120);
        fb.record(base.clone());
        fb.record(base.clone().queued(Duration::from_millis(5)));
        fb.waits()
            .record(crate::session::Priority::Normal, Duration::ZERO);
        fb.waits()
            .record(crate::session::Priority::Normal, Duration::from_millis(5));
        let stats = fb.stats();
        assert_eq!(stats.observations, 2);
        assert_eq!(stats.queued_observations, 1);
        assert_eq!(stats.queue_wait, Duration::from_millis(5));
        // Both landed in ONE bucket with identical runtime folds: the
        // aggregate mean is the compute time, wait excluded.
        let buckets = fb.buckets.lock().unwrap();
        assert_eq!(buckets.len(), 1);
        let agg = buckets.values().next().unwrap();
        assert_eq!(agg.count, 2);
        assert_eq!(agg.mean_ns(), Duration::from_micros(120).as_nanos() as f64);
    }

    #[test]
    fn buckets_quantize_as_documented() {
        assert_eq!(n_bucket(1), 0);
        assert_eq!(n_bucket(1023), 9);
        assert_eq!(n_bucket(1024), 10);
        assert_eq!(n_bucket(5000), 12);
        assert_eq!(frac_bucket(None), NONE_BUCKET);
        assert_eq!(frac_bucket(Some(0.0)), 0);
        assert_eq!(frac_bucket(Some(0.13)), 1);
        assert_eq!(frac_bucket(Some(1.0)), 7);
        assert_eq!(alpha_bucket(Some(8192)), 13);
        assert_eq!(alpha_bucket(None), NONE_BUCKET);
    }

    #[test]
    fn crossover_raises_threshold_when_small_side_wins_above_it() {
        // BNL decisively faster at n ≈ 5000 (bucket 12): the BNL
        // ceiling must rise to cover that bucket.
        let bnl = vec![(12u8, 100.0)];
        let sfs = vec![(12u8, 200.0)];
        let t = fit_crossover(&bnl, &sfs, 512, 0.15).unwrap();
        assert!(t >= 5000, "threshold {t} must cover bucket 12");
    }

    #[test]
    fn crossover_lowers_threshold_when_large_side_wins_below_it() {
        // SFS decisively faster already at n ≈ 300 (bucket 8).
        let bnl = vec![(8u8, 300.0)];
        let sfs = vec![(8u8, 100.0)];
        let t = fit_crossover(&bnl, &sfs, 512, 0.15).unwrap();
        assert!(t < 256, "threshold {t} must fall below bucket 8");
    }

    #[test]
    fn crossover_finds_the_boundary_between_winning_ranges() {
        let bnl = vec![(8u8, 100.0), (10, 100.0), (12, 500.0)];
        let sfs = vec![(8u8, 300.0), (10, 300.0), (12, 100.0)];
        let t = fit_crossover(&bnl, &sfs, 512, 0.15).unwrap();
        assert!(((1 << 11)..(1 << 13)).contains(&t), "boundary, got {t}");
    }

    #[test]
    fn crossover_holds_on_ties_and_contradictions() {
        // Within the band: no winner, no movement.
        let bnl = vec![(10u8, 100.0)];
        let sfs = vec![(10u8, 105.0)];
        assert_eq!(fit_crossover(&bnl, &sfs, 512, 0.15), None);
        // Contradiction (small side wins above a large-side win).
        let bnl = vec![(8u8, 500.0), (12, 100.0)];
        let sfs = vec![(8u8, 100.0), (12, 500.0)];
        assert_eq!(fit_crossover(&bnl, &sfs, 512, 0.15), None);
        // Disjoint buckets: nothing to compare.
        let bnl = vec![(8u8, 100.0)];
        let sfs = vec![(12u8, 100.0)];
        assert_eq!(fit_crossover(&bnl, &sfs, 512, 0.15), None);
    }

    #[test]
    fn fit_moves_dense_frac_toward_hybrid_wins() {
        let (fb, _clock) = quick_loop(4);
        // At frac ≈ 0.15 (bucket 1), Hybrid is decisively cheaper.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.15),
                Some(8192),
                900,
            ),
            8,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::Hybrid),
                20_000,
                Some(0.15),
                Some(1024),
                300,
            ),
            8,
        );
        let fitted = fb.fit(&PlannerConfig::default());
        assert!(
            fitted.dense_frac < 0.125,
            "dense_frac {} must fall below bucket 1",
            fitted.dense_frac
        );
        // And the reverse moves it up.
        fb.clear();
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.4),
                Some(8192),
                300,
            ),
            8,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::Hybrid),
                20_000,
                Some(0.4),
                Some(1024),
                900,
            ),
            8,
        );
        let fitted = fb.fit(&PlannerConfig::default());
        assert!(
            fitted.dense_frac >= 0.5,
            "dense_frac {} must rise past bucket 3",
            fitted.dense_frac
        );
    }

    #[test]
    fn fit_respects_min_observations() {
        let (fb, _clock) = quick_loop(16);
        // Decisive but under-sampled: no movement.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.15),
                Some(8192),
                900,
            ),
            8,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::Hybrid),
                20_000,
                Some(0.15),
                Some(1024),
                300,
            ),
            8,
        );
        assert_eq!(fb.fit(&PlannerConfig::default()), PlannerConfig::default());
    }

    #[test]
    fn hysteresis_band_blocks_marginal_movement() {
        let (fb, _clock) = quick_loop(4);
        // 5 % apart — inside the 15 % band.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.15),
                Some(8192),
                105,
            ),
            8,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::Hybrid),
                20_000,
                Some(0.15),
                Some(1024),
                100,
            ),
            8,
        );
        assert_eq!(fb.fit(&PlannerConfig::default()), PlannerConfig::default());
    }

    #[test]
    fn fit_alpha_prefers_decisively_faster_block_size() {
        let (fb, _clock) = quick_loop(4);
        // Most runs at α = 8192 (the incumbent), but α = 2048 is 3×
        // faster per row.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(8192),
                900,
            ),
            12,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(2048),
                300,
            ),
            8,
        );
        let fitted = fb.fit(&PlannerConfig::default());
        assert_eq!(fitted.alpha_qflow, Some(2048));
        assert_eq!(fitted.alpha_hybrid, None, "hybrid had no observations");
    }

    #[test]
    fn fit_alpha_keeps_incumbent_within_band() {
        let (fb, _clock) = quick_loop(4);
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(8192),
                310,
            ),
            12,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(2048),
                300,
            ),
            8,
        );
        assert_eq!(fb.fit(&PlannerConfig::default()).alpha_qflow, None);
    }

    #[test]
    fn fit_delta_cap_tracks_observed_margin() {
        let (fb, _clock) = quick_loop(4);
        // Delta plans barely cheaper than recomputation: shrink.
        feed(&fb, obs(PlanKind::Delta, 20_000, Some(0.1), None, 95), 8);
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.1),
                Some(8192),
                100,
            ),
            8,
        );
        let fitted = fb.fit(&PlannerConfig::default());
        assert_eq!(fitted.delta_cap, PlannerConfig::default().delta_cap / 2);
        // Delta plans 10× cheaper: grow.
        fb.clear();
        feed(&fb, obs(PlanKind::Delta, 20_000, Some(0.1), None, 10), 8);
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.1),
                Some(8192),
                100,
            ),
            8,
        );
        let fitted = fb.fit(&PlannerConfig::default());
        assert_eq!(fitted.delta_cap, PlannerConfig::default().delta_cap * 2);
    }

    #[test]
    fn refit_cadence_is_clock_driven() {
        let (fb, clock) = quick_loop(1);
        let planner = Planner::default();
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                20_000,
                Some(0.15),
                Some(8192),
                900,
            ),
            4,
        );
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::Hybrid),
                20_000,
                Some(0.15),
                Some(1024),
                300,
            ),
            4,
        );
        // The clock has not moved: nothing is due.
        assert!(!fb.due());
        assert!(!fb.maybe_refit(&planner));
        assert_eq!(fb.stats().refits, 0);
        // Advance past the interval: exactly one refit runs and the
        // evidence above installs a new dense_frac.
        clock.advance(Duration::from_secs(1));
        assert!(fb.due());
        assert!(fb.maybe_refit(&planner));
        assert_eq!(fb.stats().refits, 1);
        assert_eq!(fb.stats().installs, 1);
        assert!(planner.config().dense_frac < 0.125);
        // Immediately after: not due again.
        assert!(!fb.maybe_refit(&planner));
        assert_eq!(fb.stats().refits, 1);
        // Another interval with unchanged evidence: a refit runs but
        // installs nothing (the fit is a fixed point now).
        clock.advance(Duration::from_secs(1));
        assert!(!fb.maybe_refit(&planner));
        assert_eq!(fb.stats().refits, 2);
        assert_eq!(fb.stats().installs, 1);
    }

    #[test]
    fn concurrent_recording_stays_consistent() {
        let (fb, _clock) = quick_loop(1);
        let fb = Arc::new(fb);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let fb = Arc::clone(&fb);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        fb.record(obs(
                            PlanKind::Algo(Algorithm::QFlow),
                            1_000 + (t * 500 + i) as usize,
                            Some(0.1),
                            Some(8192),
                            100,
                        ));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fb.stats().observations, 2_000);
        assert!(fb.stats().buckets >= 1);
    }

    #[test]
    fn bucket_cap_stops_growth_not_counting() {
        let (fb, _clock) = quick_loop(1);
        for i in 0..(MAX_BUCKETS + 64) {
            // Distinct d values force distinct keys.
            fb.record(Observation {
                kind: PlanKind::Cached,
                n: 1 << (i % 20),
                d: i % 200,
                max_mask: if i % 2 == 0 { 0 } else { 0b11 },
                sample_skyline_frac: Some((i % 8) as f32 / 8.0),
                alpha: None,
                runtime: Duration::from_micros(1),
                queue_wait: Duration::ZERO,
            });
        }
        let stats = fb.stats();
        assert_eq!(stats.observations, (MAX_BUCKETS + 64) as u64);
        assert!(stats.buckets <= MAX_BUCKETS);
    }

    fn exploring_loop(every: u32) -> FeedbackLoop {
        FeedbackLoop::new(
            FeedbackConfig {
                enabled: true,
                refit_interval: Duration::from_secs(1),
                min_observations: 1,
                hysteresis: 0.15,
                explore_every: every,
            },
            ManualClock::shared() as Arc<dyn Clock>,
        )
    }

    #[test]
    fn exploration_perturbs_then_rolls_back_and_alternates() {
        let fb = exploring_loop(2);
        let planner = Planner::default();
        // All observed plans ran Q-Flow at α = 1024 (bucket 10): the
        // fitter alone can never move the override.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(1024),
                500,
            ),
            8,
        );
        // Refit #0: (0+1) % 2 ≠ 0 — no exploration, no override.
        fb.refit_now(&planner);
        assert_eq!(planner.config().alpha_qflow, None);
        // Refit #1: explores up → 2048 installed for one interval.
        fb.refit_now(&planner);
        assert_eq!(planner.config().alpha_qflow, Some(2048));
        assert_eq!(fb.stats().explorations, 1);
        // Refit #2: rolls the exploration back.
        fb.refit_now(&planner);
        assert_eq!(planner.config().alpha_qflow, None);
        // Refit #3: explores again, the other direction → 512.
        fb.refit_now(&planner);
        assert_eq!(planner.config().alpha_qflow, Some(512));
        assert_eq!(fb.stats().explorations, 2);
        // Hybrid was never observed, so it is never perturbed.
        assert_eq!(planner.config().alpha_hybrid, None);
    }

    #[test]
    fn exploration_evidence_lets_the_fitter_adopt_a_better_alpha() {
        let fb = exploring_loop(2);
        let planner = Planner::default();
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(1024),
                500,
            ),
            8,
        );
        fb.refit_now(&planner); // #0
        fb.refit_now(&planner); // #1: explores → 2048
        assert_eq!(planner.config().alpha_qflow, Some(2048));
        // The explored block size turns out decisively faster.
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(2048),
                100,
            ),
            8,
        );
        // Refit #2: rollback happens first, but the fitter now has two
        // buckets and adopts 2048 on the evidence.
        fb.refit_now(&planner);
        assert_eq!(planner.config().alpha_qflow, Some(2048));
    }

    #[test]
    fn exploration_disabled_and_unobserved_cases_are_inert() {
        let fb = exploring_loop(0);
        let planner = Planner::default();
        feed(
            &fb,
            obs(
                PlanKind::Algo(Algorithm::QFlow),
                100_000,
                Some(0.1),
                Some(1024),
                500,
            ),
            8,
        );
        for _ in 0..6 {
            fb.refit_now(&planner);
        }
        assert_eq!(fb.stats().explorations, 0);
        assert_eq!(planner.config().alpha_qflow, None);
        // With exploration on but no α observations at all, every
        // exploration tick is a no-op too.
        let fb = exploring_loop(1);
        feed(
            &fb,
            obs(PlanKind::Algo(Algorithm::Sfs), 5_000, Some(0.1), None, 500),
            8,
        );
        for _ in 0..4 {
            fb.refit_now(&planner);
        }
        assert_eq!(fb.stats().explorations, 0);
    }

    #[test]
    fn perturbation_respects_bounds() {
        assert_eq!(perturbed_bucket(10, true), 11);
        assert_eq!(perturbed_bucket(10, false), 9);
        assert_eq!(
            perturbed_bucket(ALPHA_LOG2_BOUNDS.1, true),
            ALPHA_LOG2_BOUNDS.1
        );
        assert_eq!(
            perturbed_bucket(ALPHA_LOG2_BOUNDS.0, false),
            ALPHA_LOG2_BOUNDS.0
        );
        // Below-bounds incumbents are pulled back into range.
        assert_eq!(perturbed_bucket(2, true), ALPHA_LOG2_BOUNDS.0);
    }
}
