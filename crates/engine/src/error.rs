//! Engine error types.

use std::fmt;

/// Errors raised when executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query names a dataset that is not (or no longer) registered.
    UnknownDataset(String),
    /// The query selected no dimensions.
    EmptyDims,
    /// A selected dimension index exceeds the dataset's dimensionality.
    DimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The dataset's dimensionality.
        dims: usize,
    },
    /// The same dimension was selected twice with conflicting
    /// preferences (once `Min`, once `Max`).
    ConflictingPreference {
        /// The dimension with contradictory preferences.
        dim: usize,
    },
    /// `preference` does not align one-to-one with the selected
    /// dimensions.
    PreferenceLength {
        /// Number of selected dimensions.
        expected: usize,
        /// Length of the supplied preference vector.
        got: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => {
                write!(f, "dataset '{name}' is not registered")
            }
            EngineError::EmptyDims => write!(f, "query selects no dimensions"),
            EngineError::DimOutOfRange { dim, dims } => {
                write!(f, "dimension {dim} out of range (dataset has {dims})")
            }
            EngineError::ConflictingPreference { dim } => {
                write!(
                    f,
                    "dimension {dim} selected with both Min and Max preference"
                )
            }
            EngineError::PreferenceLength { expected, got } => {
                write!(
                    f,
                    "preference vector length {got} does not match the {expected} selected dimension(s)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(EngineError::UnknownDataset("x".into())
            .to_string()
            .contains("'x'"));
        assert!(EngineError::DimOutOfRange { dim: 9, dims: 4 }
            .to_string()
            .contains('9'));
        assert!(EngineError::ConflictingPreference { dim: 2 }
            .to_string()
            .contains("Min and Max"));
    }
}
