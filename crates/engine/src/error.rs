//! Engine error taxonomy.
//!
//! Three structured families, so front-ends can map outcomes without
//! string matching:
//!
//! * **Invalid requests** — the query or mutation itself is malformed
//!   ([`EngineError::UnknownDataset`], [`EngineError::EmptyDims`], …).
//!   Retrying the same request can never succeed.
//! * **Admission rejections** — [`EngineError::Rejected`] wraps a
//!   [`RejectReason`] saying *why* the session layer refused to queue
//!   the query: a full priority class, a tenant over quota, or an
//!   engine shutting down. Queue/quota rejections are retryable
//!   backpressure ([`EngineError::is_retryable`]); shutdown is final.
//! * **Ticket terminations** — an admitted query can still end without
//!   a result: [`EngineError::Cancelled`] (the client gave up first),
//!   [`EngineError::DeadlineExceeded`] (its deadline passed before the
//!   plan ran to completion), or [`EngineError::VersionUnavailable`]
//!   (it pinned a dataset version the catalog no longer serves).

use std::fmt;

/// Which per-tenant quota an admission rejection tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaKind {
    /// The tenant already has its maximum number of queued or running
    /// tickets ([`SessionOptions::max_in_flight`](crate::SessionOptions::max_in_flight)).
    InFlight,
    /// The tenant exhausted its submissions-per-second budget for the
    /// current window ([`SessionOptions::qps_cap`](crate::SessionOptions::qps_cap)).
    Rate,
}

/// Why the admission queue refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The submission's priority class is at capacity. Classes have
    /// separate bounds, so a flood of low-priority work never blocks
    /// high-priority admission.
    QueueFull {
        /// Queued tickets in the class at the time of the rejection.
        queued: usize,
    },
    /// The tenant is over one of its quotas.
    QuotaExceeded {
        /// The rejected tenant.
        tenant: String,
        /// Which quota tripped.
        quota: QuotaKind,
    },
    /// The engine is shutting down (or already has); no new work is
    /// admitted.
    Shutdown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { queued } => {
                write!(f, "priority class full ({queued} tickets queued)")
            }
            RejectReason::QuotaExceeded { tenant, quota } => {
                let which = match quota {
                    QuotaKind::InFlight => "in-flight",
                    QuotaKind::Rate => "rate",
                };
                write!(f, "tenant '{tenant}' exceeded its {which} quota")
            }
            RejectReason::Shutdown => write!(f, "engine is shut down"),
        }
    }
}

/// Errors raised when executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query names a dataset that is not (or no longer) registered.
    UnknownDataset(String),
    /// The query selected no dimensions.
    EmptyDims,
    /// A selected dimension index exceeds the dataset's dimensionality.
    DimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The dataset's dimensionality.
        dims: usize,
    },
    /// The same dimension was selected twice with conflicting
    /// preferences (once `Min`, once `Max`).
    ConflictingPreference {
        /// The dimension with contradictory preferences.
        dim: usize,
    },
    /// `preference` does not align one-to-one with the selected
    /// dimensions.
    PreferenceLength {
        /// Number of selected dimensions.
        expected: usize,
        /// Length of the supplied preference vector.
        got: usize,
    },
    /// An inserted row's length does not match the dataset's
    /// dimensionality.
    RowArity {
        /// Index of the offending row within the batch.
        row: usize,
        /// The dataset's dimensionality.
        expected: usize,
        /// Length of the supplied row.
        got: usize,
    },
    /// An inserted row contains a non-finite value (NaN or ±∞).
    NonFiniteValue {
        /// Index of the offending row within the batch.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// A delete names a row id that is not live: out of range, already
    /// deleted, or repeated within the batch.
    UnknownRow {
        /// The offending row id.
        id: u32,
    },
    /// The admission queue refused the submission; no ticket was
    /// created.
    Rejected(RejectReason),
    /// The ticket was cancelled before its plan ran.
    Cancelled,
    /// The ticket's deadline passed before its plan ran to completion;
    /// expiry is checked at dequeue and again between plan phases, so
    /// an expired ticket never starts executing.
    DeadlineExceeded,
    /// The query pinned a dataset version the catalog no longer serves
    /// (a mutation or re-registration moved the dataset past it).
    VersionUnavailable {
        /// The version the query pinned.
        requested: u64,
        /// The version the catalog currently serves.
        current: u64,
    },
    /// The dispatch batch running this ticket panicked before the
    /// ticket produced a result. The engine survives (the dispatcher
    /// recovers and later tickets run normally), but this query's
    /// outcome is unknown.
    Internal,
    /// A telemetry entry point was used on an engine built with
    /// [`TelemetryConfig::enabled`](crate::TelemetryConfig::enabled)
    /// set to `false`.
    TelemetryDisabled,
    /// Recovery found unrepairable corruption (a checksum-failing
    /// interior WAL record or snapshot) in this dataset's durable
    /// files, so it is quarantined: queries and mutations against it
    /// fail with this error while every healthy dataset keeps
    /// serving. Re-registering the dataset replaces the corrupt files
    /// and lifts the quarantine.
    DatasetQuarantined(String),
    /// A durable engine could not persist a mutation (WAL append or
    /// snapshot write failed). The mutation was **not** applied: the
    /// in-memory state still matches the acknowledged history.
    Persist(String),
}

impl EngineError {
    /// True for backpressure rejections a client may retry later
    /// (a full queue or an exhausted quota). Invalid queries, shutdown
    /// rejections, and ticket terminations are final.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            EngineError::Rejected(RejectReason::QueueFull { .. })
                | EngineError::Rejected(RejectReason::QuotaExceeded { .. })
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => {
                write!(f, "dataset '{name}' is not registered")
            }
            EngineError::EmptyDims => write!(f, "query selects no dimensions"),
            EngineError::DimOutOfRange { dim, dims } => {
                write!(f, "dimension {dim} out of range (dataset has {dims})")
            }
            EngineError::ConflictingPreference { dim } => {
                write!(
                    f,
                    "dimension {dim} selected with both Min and Max preference"
                )
            }
            EngineError::PreferenceLength { expected, got } => {
                write!(
                    f,
                    "preference vector length {got} does not match the {expected} selected dimension(s)"
                )
            }
            EngineError::RowArity { row, expected, got } => {
                write!(
                    f,
                    "inserted row {row} has {got} value(s), dataset has {expected} dimension(s)"
                )
            }
            EngineError::NonFiniteValue { row, col } => {
                write!(
                    f,
                    "inserted row {row} has a non-finite value at column {col}"
                )
            }
            EngineError::UnknownRow { id } => {
                write!(f, "row id {id} is not live (unknown, deleted, or repeated)")
            }
            EngineError::Rejected(reason) => write!(f, "submission rejected: {reason}"),
            EngineError::Cancelled => write!(f, "ticket cancelled before execution"),
            EngineError::DeadlineExceeded => {
                write!(f, "deadline passed before the query completed")
            }
            EngineError::VersionUnavailable { requested, current } => {
                write!(
                    f,
                    "pinned dataset version {requested} is unavailable (current is {current})"
                )
            }
            EngineError::Internal => {
                write!(f, "internal error: the dispatch batch panicked mid-run")
            }
            EngineError::TelemetryDisabled => {
                write!(f, "telemetry is disabled on this engine")
            }
            EngineError::DatasetQuarantined(name) => {
                write!(
                    f,
                    "dataset '{name}' is quarantined (corrupt durable state); re-register to replace it"
                )
            }
            EngineError::Persist(why) => {
                write!(f, "durability failure, mutation not applied: {why}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(EngineError::UnknownDataset("x".into())
            .to_string()
            .contains("'x'"));
        assert!(EngineError::DimOutOfRange { dim: 9, dims: 4 }
            .to_string()
            .contains('9'));
        assert!(EngineError::ConflictingPreference { dim: 2 }
            .to_string()
            .contains("Min and Max"));
        assert!(EngineError::RowArity {
            row: 1,
            expected: 4,
            got: 3
        }
        .to_string()
        .contains("3 value(s)"));
        assert!(EngineError::NonFiniteValue { row: 0, col: 2 }
            .to_string()
            .contains("column 2"));
        assert!(EngineError::UnknownRow { id: 11 }
            .to_string()
            .contains("11"));
        assert!(EngineError::Rejected(RejectReason::QueueFull { queued: 7 })
            .to_string()
            .contains("7 tickets"));
        assert!(EngineError::Rejected(RejectReason::QuotaExceeded {
            tenant: "acme".into(),
            quota: QuotaKind::Rate
        })
        .to_string()
        .contains("'acme'"));
        assert!(EngineError::Rejected(RejectReason::Shutdown)
            .to_string()
            .contains("shut down"));
        assert!(EngineError::VersionUnavailable {
            requested: 3,
            current: 5
        }
        .to_string()
        .contains("current is 5"));
        assert!(EngineError::DatasetQuarantined("hot".into())
            .to_string()
            .contains("quarantined"));
        assert!(EngineError::Persist("disk on fire".into())
            .to_string()
            .contains("not applied"));
    }

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(EngineError::Rejected(RejectReason::QueueFull { queued: 1 }).is_retryable());
        assert!(EngineError::Rejected(RejectReason::QuotaExceeded {
            tenant: "t".into(),
            quota: QuotaKind::InFlight
        })
        .is_retryable());
        assert!(!EngineError::Rejected(RejectReason::Shutdown).is_retryable());
        assert!(!EngineError::Cancelled.is_retryable());
        assert!(!EngineError::DeadlineExceeded.is_retryable());
        assert!(!EngineError::UnknownDataset("x".into()).is_retryable());
        assert!(!EngineError::TelemetryDisabled.is_retryable());
        assert!(!EngineError::DatasetQuarantined("x".into()).is_retryable());
        assert!(!EngineError::Persist("enospc".into()).is_retryable());
    }
}
