//! Engine error types.

use std::fmt;

/// Errors raised when executing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query names a dataset that is not (or no longer) registered.
    UnknownDataset(String),
    /// The query selected no dimensions.
    EmptyDims,
    /// A selected dimension index exceeds the dataset's dimensionality.
    DimOutOfRange {
        /// The offending dimension index.
        dim: usize,
        /// The dataset's dimensionality.
        dims: usize,
    },
    /// The same dimension was selected twice with conflicting
    /// preferences (once `Min`, once `Max`).
    ConflictingPreference {
        /// The dimension with contradictory preferences.
        dim: usize,
    },
    /// `preference` does not align one-to-one with the selected
    /// dimensions.
    PreferenceLength {
        /// Number of selected dimensions.
        expected: usize,
        /// Length of the supplied preference vector.
        got: usize,
    },
    /// An inserted row's length does not match the dataset's
    /// dimensionality.
    RowArity {
        /// Index of the offending row within the batch.
        row: usize,
        /// The dataset's dimensionality.
        expected: usize,
        /// Length of the supplied row.
        got: usize,
    },
    /// An inserted row contains a non-finite value (NaN or ±∞).
    NonFiniteValue {
        /// Index of the offending row within the batch.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// A delete names a row id that is not live: out of range, already
    /// deleted, or repeated within the batch.
    UnknownRow {
        /// The offending row id.
        id: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => {
                write!(f, "dataset '{name}' is not registered")
            }
            EngineError::EmptyDims => write!(f, "query selects no dimensions"),
            EngineError::DimOutOfRange { dim, dims } => {
                write!(f, "dimension {dim} out of range (dataset has {dims})")
            }
            EngineError::ConflictingPreference { dim } => {
                write!(
                    f,
                    "dimension {dim} selected with both Min and Max preference"
                )
            }
            EngineError::PreferenceLength { expected, got } => {
                write!(
                    f,
                    "preference vector length {got} does not match the {expected} selected dimension(s)"
                )
            }
            EngineError::RowArity { row, expected, got } => {
                write!(
                    f,
                    "inserted row {row} has {got} value(s), dataset has {expected} dimension(s)"
                )
            }
            EngineError::NonFiniteValue { row, col } => {
                write!(
                    f,
                    "inserted row {row} has a non-finite value at column {col}"
                )
            }
            EngineError::UnknownRow { id } => {
                write!(f, "row id {id} is not live (unknown, deleted, or repeated)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        assert!(EngineError::UnknownDataset("x".into())
            .to_string()
            .contains("'x'"));
        assert!(EngineError::DimOutOfRange { dim: 9, dims: 4 }
            .to_string()
            .contains('9'));
        assert!(EngineError::ConflictingPreference { dim: 2 }
            .to_string()
            .contains("Min and Max"));
        assert!(EngineError::RowArity {
            row: 1,
            expected: 4,
            got: 3
        }
        .to_string()
        .contains("3 value(s)"));
        assert!(EngineError::NonFiniteValue { row: 0, col: 2 }
            .to_string()
            .contains("column 2"));
        assert!(EngineError::UnknownRow { id: 11 }
            .to_string()
            .contains("11"));
    }
}
