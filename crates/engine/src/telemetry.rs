//! The engine's unified telemetry layer: a lock-free metrics registry,
//! per-query execution traces, and a slow-query log.
//!
//! Three consumers, one source of truth:
//!
//! * **Operators** read the [`MetricsRegistry`] — counters, gauges and
//!   log-bucketed latency [`Histogram`]s behind stable names
//!   (`engine.query.latency`, `session.queue_wait{class=…}`,
//!   `dominance.tests{algo=…}`, `cache.*`, `feedback.*`) — via
//!   [`Engine::metrics`](crate::Engine::metrics), whose
//!   [`MetricsSnapshot::render`] emits a Prometheus-style text
//!   exposition.
//! * **Users** debugging one query read its [`QueryTrace`]: typed
//!   [`TraceSpan`]s (admission wait → plan → phase I → phase II → merge
//!   → cache insert) with per-span wall time on the engine
//!   [`Clock`] — exact under
//!   [`ManualClock`](crate::ManualClock) — and per-span dominance-test
//!   counts, plus the planner's chosen strategy and the cost estimates
//!   of the [candidates it rejected](PlanCandidate). Retrieved from
//!   [`QueryTicket::trace`](crate::session::QueryTicket::trace) or
//!   [`Engine::explain_analyze`](crate::Engine::explain_analyze).
//! * **On-call** reads the [`SlowQueryLog`]: a bounded ring of full
//!   traces over a configurable latency threshold, drained via
//!   [`Engine::slow_queries`](crate::Engine::slow_queries).
//!
//! Hot-path writes never take a lock: counters and histograms shard
//! across cache-padded atomic slots (the [`LaneCounters`] recipe) and
//! merge on read. The registry's interior mutex guards only
//! registration and snapshotting.
//!
//! [`LaneCounters`]: skyline_parallel::LaneCounters

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use skyline_core::algo::Algorithm;
use skyline_core::telemetry::{AlgoPhase, SpanSink};
use skyline_parallel::CachePadded;

use crate::clock::Clock;
use crate::planner::PlanCandidate;
use crate::session::Priority;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Construction-time telemetry knobs, carried by
/// [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch. When `false` the engine allocates no registry, no
    /// traces, and no slow-query ring;
    /// [`Engine::metrics`](crate::Engine::metrics) returns an empty
    /// snapshot and
    /// [`Engine::explain_analyze`](crate::Engine::explain_analyze)
    /// fails with
    /// [`EngineError::TelemetryDisabled`](crate::EngineError::TelemetryDisabled).
    pub enabled: bool,
    /// Queries whose end-to-end latency (admission wait included) is at
    /// least this threshold have their full trace retained in the
    /// slow-query ring. `Duration::ZERO` retains every query.
    pub slow_query_threshold: Duration,
    /// Capacity of the slow-query ring; the oldest trace is evicted
    /// when a new one arrives at capacity.
    pub slow_log_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            slow_query_threshold: Duration::from_millis(100),
            slow_log_capacity: 64,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// Number of cache-padded shards per hot instrument. A small power of
/// two: enough to keep concurrent sessions off each other's cache
/// lines, small enough that merging on read stays trivial.
const SHARDS: usize = 8;

/// This thread's stable shard slot, assigned round-robin at first use.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter, sharded across cache-padded
/// atomic slots so concurrent writers never contend on one line.
#[derive(Debug)]
pub struct Counter {
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_slot() % SHARDS].fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (slots merged on read).
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One histogram shard: every field is written by (mostly) one thread
/// and merged on read.
#[derive(Debug)]
struct HistogramShard {
    count: AtomicU64,
    sum_ns: AtomicU64,
    zeros: AtomicU64,
    buckets: [AtomicU64; 64],
}

impl HistogramShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            zeros: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A latency histogram with logarithmic buckets: bucket `i` counts
/// durations of `2^i ..= 2^(i+1)-1` nanoseconds (bucket 0 also counts
/// exact zeros, which are additionally tracked separately so readers
/// can distinguish "instant" from "sub-2ns"). Writes shard across
/// cache-padded slots like [`Counter`].
#[derive(Debug)]
pub struct Histogram {
    shards: Box<[CachePadded<HistogramShard>]>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(HistogramShard::new()))
                .collect(),
        }
    }

    /// Bucket index for a duration of `ns` nanoseconds:
    /// `floor(log2(max(ns, 1)))`.
    #[inline]
    fn bucket_index(ns: u64) -> usize {
        if ns <= 1 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound, in nanoseconds, of bucket `i`.
    #[inline]
    fn bucket_le(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let shard = &self.shards[shard_slot() % SHARDS];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if ns == 0 {
            shard.zeros.fetch_add(1, Ordering::Relaxed);
        }
        shard.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merged point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0u64;
        let mut sum_ns = 0u64;
        let mut zeros = 0u64;
        let mut merged = [0u64; 64];
        for shard in self.shards.iter() {
            count += shard.count.load(Ordering::Relaxed);
            sum_ns += shard.sum_ns.load(Ordering::Relaxed);
            zeros += shard.zeros.load(Ordering::Relaxed);
            for (m, b) in merged.iter_mut().zip(shard.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
        }
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in merged.iter().enumerate() {
            if c > 0 {
                cumulative += c;
                buckets.push((Self::bucket_le(i), cumulative));
            }
        }
        HistogramSnapshot {
            count,
            zeros,
            sum: Duration::from_nanos(sum_ns),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A merged, read-only view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Observations of exactly zero duration.
    pub zeros: u64,
    /// Sum of all observations.
    pub sum: Duration,
    /// Occupied buckets as `(inclusive upper bound in ns, cumulative
    /// count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (0 ≤ `q` ≤ 1): the
    /// inclusive upper edge of the bucket holding the rank-`q`
    /// observation. Exact zeros rank as zero.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank < self.zeros {
            return Duration::ZERO;
        }
        for &(le, cumulative) in &self.buckets {
            if cumulative > rank {
                return Duration::from_nanos(le);
            }
        }
        Duration::from_nanos(self.buckets.last().map_or(0, |&(le, _)| le))
    }

    /// Mean observation; zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.sum / self.count as u32
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A metric's identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The engine's named-instrument registry.
///
/// Registration (get-or-create by name + labels) takes a short lock;
/// the returned handles are lock-free to write.
/// [`snapshot`](MetricsRegistry::snapshot) merges every instrument
/// into a [`MetricsSnapshot`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<MetricId, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` + `labels`, created on first
    /// use.
    ///
    /// # Panics
    /// If the name is already registered as a different instrument
    /// kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = MetricId::new(name, labels);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(id)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge registered under `name` + `labels`, created on first
    /// use.
    ///
    /// # Panics
    /// If the name is already registered as a different instrument
    /// kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = MetricId::new(name, labels);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(id)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram registered under `name` + `labels`, created on
    /// first use.
    ///
    /// # Panics
    /// If the name is already registered as a different instrument
    /// kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let id = MetricId::new(name, labels);
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(id)
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// Registers a pre-built histogram handle under `name` + `labels`
    /// (used to expose histograms that must exist even when no registry
    /// does, like the queue-wait family shared with the feedback loop).
    pub(crate) fn adopt_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        handle: &Arc<Histogram>,
    ) {
        let id = MetricId::new(name, labels);
        self.instruments
            .lock()
            .unwrap()
            .insert(id, Instrument::Histogram(Arc::clone(handle)));
    }

    /// A merged snapshot of every registered instrument, sorted by
    /// name then labels.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().unwrap();
        let samples = map
            .iter()
            .map(|(id, inst)| MetricSample {
                name: id.name.clone(),
                labels: id.labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.value()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.value()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// One instrument's value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's merged total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's merged snapshot.
    Histogram(HistogramSnapshot),
}

/// One named instrument inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Stable metric name, e.g. `engine.query.latency`.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time view of the whole registry, plus any derived
/// samples the engine appends (cache and feedback families).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Every sample, sorted by name then labels.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Whether the snapshot carries no samples at all (telemetry
    /// disabled).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let id = MetricId::new(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == id.name && s.labels == id.labels)
    }

    /// The counter registered under `name` + `labels`, if any.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The gauge registered under `name` + `labels`, if any.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// The histogram registered under `name` + `labels`, if any.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    pub(crate) fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        let id = MetricId::new(name, labels);
        self.samples.push(MetricSample {
            name: id.name,
            labels: id.labels,
            value: MetricValue::Counter(v),
        });
    }

    pub(crate) fn push_gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let id = MetricId::new(name, labels);
        self.samples.push(MetricSample {
            name: id.name,
            labels: id.labels,
            value: MetricValue::Gauge(v),
        });
    }

    /// Renders the snapshot as Prometheus-style text: one
    /// `name{label="value",…} value` line per counter or gauge, and
    /// the `_bucket`/`_sum`/`_count` triple per histogram (`le` upper
    /// bounds in nanoseconds, cumulative counts, `+Inf` last).
    pub fn render(&self) -> String {
        fn label_str(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
            let mut parts: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        }
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_str(&s.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_str(&s.labels, None));
                }
                MetricValue::Histogram(h) => {
                    for &(le, cumulative) in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            s.name,
                            label_str(&s.labels, Some(("le", le.to_string())))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_str(&s.labels, Some(("le", "+Inf".to_string()))),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        label_str(&s.labels, None),
                        h.sum.as_nanos()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        label_str(&s.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// The typed stages a query can spend time in, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Waiting in the admission queue before dispatch.
    AdmissionWait,
    /// Catalog lookup and planner decision.
    Plan,
    /// Sort-key computation, sorting, working-set gathering.
    Init,
    /// β-queue pre-filtering (Hybrid).
    Prefilter,
    /// Pivot selection and partitioning (Hybrid).
    Pivot,
    /// Comparisons against the known skyline.
    PhaseOne,
    /// Comparisons against not-yet-confirmed block peers.
    PhaseTwo,
    /// Block compression and result merging.
    Merge,
    /// Sharded plans: routing live rows into per-shard working sets.
    ShardScatter,
    /// Sharded plans: one shard's local skyline computation (the trace
    /// carries one such span **per shard**, distinguished by
    /// [`TraceSpan::shard`]).
    ShardLocal,
    /// Sharded plans: witness-pruned merge of the local skylines.
    ShardMerge,
    /// Non-algorithmic execution (trivial and min-scan plans).
    Execute,
    /// Serving a result straight from the cache.
    CacheHit,
    /// Deriving a result from a cached **ancestor** entry — a skyband
    /// at `k' ≥ k` filtered down by its stored dominator counts (or a
    /// top-k dominating list truncated) — with no dataset scan at all.
    CacheAncestor,
    /// Pre-filtering algorithm input through a cached subspace skyline
    /// (the superspace-seed optimisation).
    CacheSeed,
    /// Inserting the fresh result into the cache.
    CacheInsert,
    /// Patching a prior cached result through a mutation delta.
    CachePatch,
}

impl SpanKind {
    /// Stable lower-case name used in rendered traces.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::AdmissionWait => "admission_wait",
            SpanKind::Plan => "plan",
            SpanKind::Init => "init",
            SpanKind::Prefilter => "prefilter",
            SpanKind::Pivot => "pivot",
            SpanKind::PhaseOne => "phase1",
            SpanKind::PhaseTwo => "phase2",
            SpanKind::Merge => "merge",
            SpanKind::ShardScatter => "shard.scatter",
            SpanKind::ShardLocal => "shard.local",
            SpanKind::ShardMerge => "shard.merge",
            SpanKind::Execute => "execute",
            SpanKind::CacheHit => "cache_hit",
            SpanKind::CacheAncestor => "cache_ancestor",
            SpanKind::CacheSeed => "cache_seed",
            SpanKind::CacheInsert => "cache_insert",
            SpanKind::CachePatch => "cache_patch",
        }
    }

    /// The span kind an algorithm phase maps to.
    pub fn from_phase(phase: AlgoPhase) -> SpanKind {
        match phase {
            AlgoPhase::Init => SpanKind::Init,
            AlgoPhase::Prefilter => SpanKind::Prefilter,
            AlgoPhase::Pivot => SpanKind::Pivot,
            AlgoPhase::PhaseOne => SpanKind::PhaseOne,
            AlgoPhase::PhaseTwo => SpanKind::PhaseTwo,
            AlgoPhase::Compress => SpanKind::Merge,
        }
    }
}

/// One aggregated stage of a query's execution.
///
/// α-block algorithms cross each phase boundary once per block; the
/// trace aggregates them, so a span's `duration` is the total time
/// attributed to that stage and `start` is the first time it was
/// entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The stage.
    pub kind: SpanKind,
    /// For per-shard stages ([`SpanKind::ShardLocal`]), which shard
    /// the span describes; `None` for every whole-query stage.
    /// Aggregation is per `(kind, shard)`, so a sharded trace carries
    /// one local span per shard with its own duration and
    /// dominance-test count.
    pub shard: Option<u32>,
    /// Engine-clock timestamp of first entry.
    pub start: Duration,
    /// Total time attributed to the stage.
    pub duration: Duration,
    /// Dominance tests spent in the stage.
    pub dominance_tests: u64,
}

/// The full execution trace of one query, as returned by
/// [`QueryTicket::trace`](crate::session::QueryTicket::trace) and
/// [`Engine::explain_analyze`](crate::Engine::explain_analyze).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The session-scoped ticket id of the traced query.
    pub query_id: u64,
    /// Dataset the query ran against.
    pub dataset: String,
    /// The executed strategy's stable name (`"hybrid"`, `"delta"`,
    /// `"cache"`, …).
    pub strategy: &'static str,
    /// The planner's one-line justification.
    pub reason: &'static str,
    /// Every strategy the planner's final cost comparison considered,
    /// with its estimated cost; empty for rule-based (non-costed)
    /// decisions.
    pub candidates: Vec<PlanCandidate>,
    /// Aggregated spans in first-entry order.
    pub spans: Vec<TraceSpan>,
    /// Time spent queued before dispatch.
    pub queue_wait: Duration,
    /// End-to-end latency on the engine clock, admission wait
    /// included.
    pub total: Duration,
    /// Dominance tests attributed to this query.
    pub dominance_tests: u64,
    /// Whether the result came from the cache without recomputation.
    pub cache_hit: bool,
}

impl QueryTrace {
    /// The aggregated span for `kind`, if the query entered it (the
    /// first matching span for per-shard kinds — use
    /// [`spans_of`](Self::spans_of) to see every shard).
    pub fn span(&self, kind: SpanKind) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.kind == kind)
    }

    /// Every aggregated span for `kind`, in first-entry order — one
    /// per shard for the per-shard kinds.
    pub fn spans_of(&self, kind: SpanKind) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Renders the trace as one machine-greppable `TRACE …` line.
    /// Per-shard spans render as `shard.local[i]:…`.
    pub fn render(&self) -> String {
        let mut spans = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                spans.push(' ');
            }
            let _ = match s.shard {
                Some(shard) => write!(
                    spans,
                    "{}[{shard}]:{}us/{}dt",
                    s.kind.name(),
                    s.duration.as_micros(),
                    s.dominance_tests
                ),
                None => write!(
                    spans,
                    "{}:{}us/{}dt",
                    s.kind.name(),
                    s.duration.as_micros(),
                    s.dominance_tests
                ),
            };
        }
        format!(
            "TRACE query={} dataset={} strategy={} cache_hit={} wait_us={} total_us={} dts={} spans=[{}]",
            self.query_id,
            self.dataset,
            self.strategy,
            self.cache_hit,
            self.queue_wait.as_micros(),
            self.total.as_micros(),
            self.dominance_tests,
            spans
        )
    }
}

#[derive(Debug, Default)]
struct TraceAcc {
    spans: Vec<TraceSpan>,
    mark: Duration,
}

/// A trace under construction: the engine adds its own spans
/// (admission wait, planning, cache traffic) with explicit bounds, and
/// the running algorithm streams phase boundaries into it through the
/// [`SpanSink`] seam. All timestamps come from the engine [`Clock`],
/// so a [`ManualClock`](crate::ManualClock) makes every duration
/// exact.
#[derive(Debug)]
pub(crate) struct ActiveTrace {
    clock: Arc<dyn Clock>,
    inner: Mutex<TraceAcc>,
}

impl ActiveTrace {
    pub(crate) fn new(clock: Arc<dyn Clock>) -> Self {
        let mark = clock.now();
        Self {
            clock,
            inner: Mutex::new(TraceAcc {
                spans: Vec::new(),
                mark,
            }),
        }
    }

    /// Adds an engine-side span with explicit bounds.
    pub(crate) fn add_span(
        &self,
        kind: SpanKind,
        start: Duration,
        duration: Duration,
        dominance_tests: u64,
    ) {
        self.add_span_sharded(kind, None, start, duration, dominance_tests);
    }

    /// Adds an engine-side span attributed to one shard. Spans
    /// aggregate per `(kind, shard)`, so per-shard stages stay visible
    /// individually instead of collapsing into one row.
    pub(crate) fn add_span_sharded(
        &self,
        kind: SpanKind,
        shard: Option<u32>,
        start: Duration,
        duration: Duration,
        dominance_tests: u64,
    ) {
        let mut acc = self.inner.lock().unwrap();
        if let Some(span) = acc
            .spans
            .iter_mut()
            .find(|s| s.kind == kind && s.shard == shard)
        {
            span.duration += duration;
            span.dominance_tests += dominance_tests;
        } else {
            acc.spans.push(TraceSpan {
                kind,
                shard,
                start,
                duration,
                dominance_tests,
            });
        }
    }

    /// Re-bases the phase-boundary mark to "now" — called right before
    /// handing control to an algorithm, so its first phase is not
    /// charged for engine-side time.
    pub(crate) fn set_mark(&self) {
        let now = self.clock.now();
        self.inner.lock().unwrap().mark = now;
    }

    /// Seals the trace.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &self,
        query_id: u64,
        dataset: &str,
        strategy: &'static str,
        reason: &'static str,
        candidates: Vec<PlanCandidate>,
        queue_wait: Duration,
        total: Duration,
        cache_hit: bool,
    ) -> Arc<QueryTrace> {
        let mut acc = self.inner.lock().unwrap();
        let spans = std::mem::take(&mut acc.spans);
        let dominance_tests = spans.iter().map(|s| s.dominance_tests).sum();
        Arc::new(QueryTrace {
            query_id,
            dataset: dataset.to_string(),
            strategy,
            reason,
            candidates,
            spans,
            queue_wait,
            total,
            dominance_tests,
            cache_hit,
        })
    }
}

impl SpanSink for ActiveTrace {
    fn phase_end(&self, phase: AlgoPhase, dominance_tests: u64) {
        let now = self.clock.now();
        let kind = SpanKind::from_phase(phase);
        let mut acc = self.inner.lock().unwrap();
        let mark = acc.mark;
        let lap = now.saturating_sub(mark);
        if let Some(span) = acc
            .spans
            .iter_mut()
            .find(|s| s.kind == kind && s.shard.is_none())
        {
            span.duration += lap;
            span.dominance_tests += dominance_tests;
        } else {
            acc.spans.push(TraceSpan {
                kind,
                shard: None,
                start: mark,
                duration: lap,
                dominance_tests,
            });
        }
        acc.mark = now;
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// A bounded ring of the most recent traces whose end-to-end latency
/// met the configured threshold.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold: Duration,
    capacity: usize,
    ring: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl SlowQueryLog {
    fn new(threshold: Duration, capacity: usize) -> Self {
        Self {
            threshold,
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Retains `trace` if it met the threshold, evicting the oldest
    /// entry at capacity.
    pub(crate) fn offer(&self, trace: &Arc<QueryTrace>) {
        if trace.total < self.threshold {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(trace));
    }

    /// Removes and returns every retained trace, oldest first.
    pub fn drain(&self) -> Vec<Arc<QueryTrace>> {
        self.ring.lock().unwrap().drain(..).collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Queue-wait histograms (shared with the feedback loop)
// ---------------------------------------------------------------------------

/// The per-class `session.queue_wait` histogram family.
///
/// This is the **single source of truth** for queue-wait time: the
/// session layer records into it on every successful completion, the
/// metrics registry exposes it, and the feedback loop derives its
/// [`FeedbackStats`](crate::planner::feedback::FeedbackStats) wait
/// aggregates from it instead of keeping a parallel tally. It exists
/// even when telemetry is disabled (the feedback loop needs it), which
/// is cheap: three histograms, written lock-free.
#[derive(Debug)]
pub struct QueueWaitHistograms {
    per_class: [Arc<Histogram>; 3],
}

impl QueueWaitHistograms {
    /// Three empty per-class histograms.
    pub fn new() -> Self {
        Self {
            per_class: std::array::from_fn(|_| Arc::new(Histogram::new())),
        }
    }

    /// Records a completed query's queue wait under its class.
    #[inline]
    pub fn record(&self, class: Priority, wait: Duration) {
        self.per_class[class.index()].record(wait);
    }

    /// The histogram for `class`.
    pub fn class(&self, class: Priority) -> &Arc<Histogram> {
        &self.per_class[class.index()]
    }

    /// Across all classes: how many completions waited a nonzero time,
    /// and their summed wait — the pair
    /// [`FeedbackStats`](crate::planner::feedback::FeedbackStats)
    /// reports as `queued_observations` / `queue_wait`.
    pub fn queued_total(&self) -> (u64, Duration) {
        let mut queued = 0u64;
        let mut sum = Duration::ZERO;
        for h in &self.per_class {
            let s = h.snapshot();
            queued += s.count - s.zeros;
            sum += s.sum;
        }
        (queued, sum)
    }
}

impl Default for QueueWaitHistograms {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// The engine-facing aggregate
// ---------------------------------------------------------------------------

/// Everything the engine's telemetry layer owns: the registry, the
/// pre-registered hot-path instruments, and the slow-query ring.
#[derive(Debug)]
pub(crate) struct Telemetry {
    registry: Arc<MetricsRegistry>,
    query_latency: Arc<Histogram>,
    dominance: Vec<(Algorithm, Arc<Counter>)>,
    submitted: [Arc<Counter>; 3],
    completed: [Arc<Counter>; 3],
    rejected_queue: [Arc<Counter>; 3],
    rejected_quota: [Arc<Counter>; 3],
    slow_log: SlowQueryLog,
}

impl Telemetry {
    pub(crate) fn new(cfg: TelemetryConfig, waits: &QueueWaitHistograms) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        for class in Priority::ALL {
            registry.adopt_histogram(
                "session.queue_wait",
                &[("class", class.name())],
                waits.class(class),
            );
        }
        let query_latency = registry.histogram("engine.query.latency", &[]);
        let dominance = Algorithm::ALL
            .iter()
            .map(|&a| {
                (
                    a,
                    registry.counter("dominance.tests", &[("algo", a.name())]),
                )
            })
            .collect();
        let per_class = |name: &str| -> [Arc<Counter>; 3] {
            std::array::from_fn(|i| registry.counter(name, &[("class", Priority::ALL[i].name())]))
        };
        let submitted = per_class("session.submitted");
        let completed = per_class("session.completed");
        let rejected_queue: [Arc<Counter>; 3] = std::array::from_fn(|i| {
            registry.counter(
                "session.rejected",
                &[("class", Priority::ALL[i].name()), ("reason", "queue_full")],
            )
        });
        let rejected_quota: [Arc<Counter>; 3] = std::array::from_fn(|i| {
            registry.counter(
                "session.rejected",
                &[("class", Priority::ALL[i].name()), ("reason", "quota")],
            )
        });
        let slow_log = SlowQueryLog::new(cfg.slow_query_threshold, cfg.slow_log_capacity);
        Self {
            registry,
            query_latency,
            dominance,
            submitted,
            completed,
            rejected_queue,
            rejected_quota,
            slow_log,
        }
    }

    pub(crate) fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A shared handle on the registry, handed to embedders through
    /// [`Engine::metrics_registry`](crate::Engine::metrics_registry).
    pub(crate) fn registry_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    pub(crate) fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }

    pub(crate) fn record_latency(&self, total: Duration) {
        self.query_latency.record(total);
    }

    pub(crate) fn record_dominance(&self, algo: Algorithm, dts: u64) {
        if let Some((_, c)) = self.dominance.iter().find(|(a, _)| *a == algo) {
            c.add(dts);
        }
    }

    pub(crate) fn on_submitted(&self, class: Priority) {
        self.submitted[class.index()].inc();
    }

    pub(crate) fn on_completed(&self, class: Priority) {
        self.completed[class.index()].inc();
    }

    pub(crate) fn on_rejected_queue_full(&self, class: Priority) {
        self.rejected_queue[class.index()].inc();
    }

    pub(crate) fn on_rejected_quota(&self, class: Priority) {
        self.rejected_quota[class.index()].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counter_merges_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 4_000);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        let h = Histogram::new();
        for ns in [0u64, 1, 2, 3, 1023, 1024] {
            h.record(Duration::from_nanos(ns));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.zeros, 1);
        // 0 and 1 land in the le=1 bucket; 2 and 3 in le=3; 1023 in
        // le=1023; 1024 in le=2047.
        assert_eq!(s.buckets, vec![(1, 2), (3, 4), (1023, 5), (2047, 6)]);
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // le=127
        }
        h.record(Duration::from_micros(100)); // le=131071
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Duration::from_nanos(127));
        assert_eq!(s.quantile(1.0), Duration::from_nanos(131_071));
        assert_eq!(
            HistogramSnapshot::default_empty().quantile(0.5),
            Duration::ZERO
        );
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Self {
                count: 0,
                zeros: 0,
                sum: Duration::ZERO,
                buckets: Vec::new(),
            }
        }
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("x", &[("k", "v")]);
        let b = r.counter("x", &[("k", "v")]);
        assert!(Arc::ptr_eq(&a, &b));
        a.add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x", &[("k", "v")]), Some(3));
        assert_eq!(snap.counter("x", &[]), None);
    }

    #[test]
    fn render_is_line_per_sample_with_sorted_labels() {
        let r = MetricsRegistry::new();
        r.counter("b.count", &[("z", "1"), ("a", "2")]).add(7);
        r.gauge("a.gauge", &[]).set(0.5);
        r.histogram("c.lat", &[]).record(Duration::from_nanos(3));
        let text = r.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "a.gauge 0.5",
                "b.count{a=\"2\",z=\"1\"} 7",
                "c.lat_bucket{le=\"3\"} 1",
                "c.lat_bucket{le=\"+Inf\"} 1",
                "c.lat_sum 3",
                "c.lat_count 1",
            ]
        );
    }

    #[test]
    fn active_trace_aggregates_blocks_per_kind() {
        let clock = ManualClock::shared();
        let trace = ActiveTrace::new(Arc::clone(&clock) as Arc<dyn Clock>);
        clock.advance(Duration::from_millis(1));
        trace.phase_end(AlgoPhase::PhaseOne, 10);
        clock.advance(Duration::from_millis(2));
        trace.phase_end(AlgoPhase::Compress, 0);
        clock.advance(Duration::from_millis(3));
        trace.phase_end(AlgoPhase::PhaseOne, 5); // second α-block
        let t = trace.finish(
            1,
            "d",
            "qflow",
            "",
            Vec::new(),
            Duration::ZERO,
            clock.now(),
            false,
        );
        let p1 = t.span(SpanKind::PhaseOne).unwrap();
        assert_eq!(p1.duration, Duration::from_millis(4));
        assert_eq!(p1.dominance_tests, 15);
        assert_eq!(p1.start, Duration::ZERO);
        let merge = t.span(SpanKind::Merge).unwrap();
        assert_eq!(merge.duration, Duration::from_millis(2));
        assert_eq!(t.dominance_tests, 15);
        assert!(t
            .render()
            .starts_with("TRACE query=1 dataset=d strategy=qflow"));
    }

    #[test]
    fn slow_log_keeps_threshold_crossers_bounded() {
        let log = SlowQueryLog::new(Duration::from_millis(1), 2);
        let mk = |id: u64, ms: u64| {
            Arc::new(QueryTrace {
                query_id: id,
                dataset: "d".into(),
                strategy: "trivial",
                reason: "",
                candidates: Vec::new(),
                spans: Vec::new(),
                queue_wait: Duration::ZERO,
                total: Duration::from_millis(ms),
                dominance_tests: 0,
                cache_hit: false,
            })
        };
        log.offer(&mk(1, 0)); // below threshold
        log.offer(&mk(2, 2));
        log.offer(&mk(3, 2));
        log.offer(&mk(4, 2)); // evicts 2
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(
            drained.iter().map(|t| t.query_id).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert!(log.is_empty());
    }

    #[test]
    fn queue_wait_family_sums_nonzero_waits() {
        let w = QueueWaitHistograms::new();
        w.record(Priority::High, Duration::ZERO);
        w.record(Priority::High, Duration::from_millis(2));
        w.record(Priority::Low, Duration::from_millis(3));
        let (queued, sum) = w.queued_total();
        assert_eq!(queued, 2);
        assert_eq!(sum, Duration::from_millis(5));
        assert_eq!(w.class(Priority::High).snapshot().count, 2);
    }
}
