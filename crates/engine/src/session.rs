//! The engine's serving front door: sessions, query tickets, admission
//! control, and per-tenant quotas.
//!
//! The blocking [`Engine::execute`](crate::Engine::execute) pair answers
//! one caller at a time; a serving tier needs somewhere to **queue,
//! shed, and prioritize** load before it reaches the compute pool. This
//! module is that layer:
//!
//! * a [`Session`] identifies a **tenant** and carries its priority
//!   class and quotas ([`SessionOptions`]);
//! * [`Session::submit`] is **non-blocking**: it validates the query,
//!   pins the dataset snapshot current at submission, probes the result
//!   cache (hits short-circuit admission entirely), and otherwise asks
//!   the admission queue for a slot — returning a [`QueryTicket`] the
//!   client can [`poll`](QueryTicket::poll), [`wait`](QueryTicket::wait),
//!   [`wait_timeout`](QueryTicket::wait_timeout), or
//!   [`cancel`](QueryTicket::cancel);
//! * admission is **bounded per priority class** ([`Priority`]), so a
//!   flood of low-priority work fills only its own queue — a per-query
//!   [`SkylineQuery::priority`] can lower a submission's class but is
//!   clamped to the session's, so no tenant self-elevates — and the
//!   rejection ([`EngineError::Rejected`]) names the reason:
//!   [`RejectReason::QueueFull`], [`RejectReason::QuotaExceeded`]
//!   (per-tenant in-flight and per-second submission quotas, measured
//!   on the engine's [`Clock`](crate::Clock) so tests drive them with a
//!   [`ManualClock`](crate::ManualClock)), or [`RejectReason::Shutdown`];
//! * a **dispatcher** drains the queues highest-class-first — with
//!   **class aging** ([`AdmissionConfig::age_boost_after`]) so
//!   sustained High traffic cannot starve Low forever,
//!   **round-robin across tenants within a class** (one tenant's bulk
//!   backlog cannot make a co-tenant's single ticket wait behind all of
//!   it), earliest-deadline-first order within a tenant, and a re-check for
//!   newly queued higher-class tickets between a batch's pool-wide
//!   plans — and feeds the engine's shared thread pool through the
//!   same batch core as
//!   [`Engine::execute_batch`](crate::Engine::execute_batch), so
//!   co-queued tickets coalesce: sequential plans run one per pool
//!   lane, parallel plans span the whole pool, and the pool is never
//!   oversubscribed;
//! * per-query **deadlines** ([`SkylineQuery::deadline`]) are checked
//!   at dequeue and again between plan phases — an expired ticket
//!   terminates with [`EngineError::DeadlineExceeded`] without running
//!   its plan, and a cancelled one with [`EngineError::Cancelled`].
//!
//! Every ticket executes against the dataset snapshot captured at
//! submission (the catalog's entries are immutable behind `Arc`s), so
//! mutations landing while a ticket waits cannot tear its result;
//! [`SkylineQuery::pin_version`] additionally *asserts* which version
//! that snapshot is.
//!
//! [`Engine::shutdown`](crate::Engine::shutdown) closes admission
//! (subsequent submissions are rejected with
//! [`RejectReason::Shutdown`]) and **drains** the queues: every ticket
//! already admitted runs to a terminal outcome before shutdown returns.
//!
//! ## Walkthrough
//!
//! ```
//! use skyline_engine::{Engine, Priority, SessionOptions, SkylineQuery};
//! use skyline_data::Dataset;
//!
//! let engine = Engine::new();
//! engine.register(
//!     "hotels",
//!     Dataset::from_rows(&[vec![120.0, 2.0], vec![90.0, 5.0], vec![150.0, 4.0]]).unwrap(),
//! );
//!
//! // A tenant with a quota: at most 64 queued-or-running tickets.
//! let session = engine.open_session(
//!     SessionOptions::new("acme").priority(Priority::High).max_in_flight(64),
//! );
//!
//! // Non-blocking submission; the ticket is the handle.
//! let ticket = session.submit(&SkylineQuery::new("hotels")).unwrap();
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.indices(), &[0, 1]);
//!
//! // Repeats short-circuit admission from the result cache.
//! let warm = session.submit(&SkylineQuery::new("hotels")).unwrap();
//! assert!(warm.poll().expect("cache hits complete at submit").unwrap().cache_hit);
//! engine.shutdown();
//! ```

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{EngineShared, Prepared};
use crate::error::{EngineError, QuotaKind, RejectReason};
use crate::query::{QueryResult, SkylineQuery};
use crate::telemetry::{QueryTrace, SpanKind, TraceSpan};

/// Nano-tokens per admission in the per-tenant token bucket backing
/// [`SessionOptions::qps_cap`]. Integer nano-token arithmetic keeps the
/// refill exact under a [`ManualClock`](crate::ManualClock) — no
/// floating-point drift at window boundaries.
const TOKEN: u64 = 1_000_000_000;

/// Priority classes of the admission queue, dispatched highest first.
/// Each class has its own bounded queue, so saturating one class never
/// blocks admission into another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: bulk exports, prefetchers, analytics.
    Low,
    /// The default class for interactive traffic.
    Normal,
    /// Latency-sensitive traffic; dispatched before everything else.
    High,
}

impl Priority {
    /// Every class, lowest to highest.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Construction-time knobs of the admission queue and its dispatcher,
/// carried by [`EngineConfig`](crate::EngineConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queued tickets **per priority class**; a submission into
    /// a full class is rejected with [`RejectReason::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum tickets one dispatch pass pops from the queues; the pass
    /// schedules them together through the batch core (sequential plans
    /// lane-parallel, parallel plans pool-wide). Larger batches
    /// coalesce better but also bound how long a higher-priority ticket
    /// arriving *just after* a pop waits behind the in-flight batch —
    /// lower it for tighter priority latency under sustained load.
    pub max_batch: usize,
    /// Whether the engine runs a background dispatcher thread. `false`
    /// leaves dispatch to [`Engine::pump`](crate::Engine::pump) /
    /// [`Engine::dispatch_now`](crate::Engine::dispatch_now) (and to
    /// waiting threads, which then drive the queue themselves) — the
    /// deterministic mode the session tests run in.
    pub background_dispatcher: bool,
    /// Queue wait (on the engine clock) after which a ticket counts as
    /// one class higher in dispatch ordering — and two higher after
    /// twice this — so sustained High traffic cannot starve Low
    /// forever. Aging changes *dispatch order only*: capacities and
    /// quotas still apply at the admitted class. `Duration::ZERO`
    /// disables aging (strict priority).
    pub age_boost_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch: 64,
            background_dispatcher: true,
            age_boost_after: Duration::from_millis(100),
        }
    }
}

/// Identity, priority class, and quotas of a [`Session`], passed to
/// [`Engine::open_session`](crate::Engine::open_session).
///
/// Quotas attach to the **tenant**, not the session object: two
/// sessions opened for the same tenant share one in-flight count and
/// one rate window (re-opening updates the caps; the last open wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOptions {
    pub(crate) tenant: String,
    pub(crate) priority: Priority,
    pub(crate) max_in_flight: Option<usize>,
    pub(crate) qps_cap: Option<u32>,
}

impl SessionOptions {
    /// Options for `tenant`: [`Priority::Normal`], no quotas.
    pub fn new(tenant: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            priority: Priority::Normal,
            max_in_flight: None,
            qps_cap: None,
        }
    }

    /// Sets the session's priority class — the ceiling for everything
    /// it submits (a per-query [`SkylineQuery::priority`] can lower a
    /// single submission, never raise it).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Caps the tenant's queued-or-running tickets; submissions beyond
    /// it are rejected with [`QuotaKind::InFlight`].
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight = Some(cap);
        self
    }

    /// Caps the tenant's admitted submissions per second via a token
    /// bucket on the engine's clock: the tenant may burst up to `cap`
    /// admissions, and the bucket refills continuously at `cap` tokens
    /// per second. Submissions finding less than one whole token are
    /// rejected with [`QuotaKind::Rate`]. Cache-hit short-circuits
    /// don't consume the budget.
    pub fn qps_cap(mut self, cap: u32) -> Self {
        self.qps_cap = Some(cap);
        self
    }
}

/// Monotonic counters describing the admission queue's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Tickets admitted into the queue.
    pub submitted: u64,
    /// Submissions answered straight from the result cache, bypassing
    /// admission.
    pub short_circuits: u64,
    /// Tickets that terminated with a result.
    pub completed: u64,
    /// Tickets that terminated cancelled before running.
    pub cancelled: u64,
    /// Tickets whose deadline expired before running to completion.
    pub deadline_expired: u64,
    /// Tickets stranded by a panicking dispatch batch and terminated
    /// with [`EngineError::Internal`] — nonzero means an incident, not
    /// successful completions.
    pub internal_errors: u64,
    /// Submissions rejected because their priority class was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected over a tenant quota.
    pub rejected_quota: u64,
    /// Submissions rejected because the engine was shutting down.
    pub rejected_shutdown: u64,
    /// Tickets currently queued (all classes).
    pub queued: usize,
    /// Tenants currently tracked (live sessions or in-flight tickets).
    pub tenants: usize,
}

/// Terminal outcome slot of a ticket, guarded by the ticket's mutex.
#[derive(Debug, Default)]
pub(crate) struct TicketInner {
    pub(crate) outcome: Option<Result<QueryResult, EngineError>>,
    pub(crate) queue_wait: Option<Duration>,
    /// The sealed execution trace, present once terminal on an engine
    /// with telemetry enabled (successful outcomes only).
    pub(crate) trace: Option<Arc<QueryTrace>>,
}

/// Shared state behind a [`QueryTicket`]; the admission queue holds the
/// same `Arc` until dispatch.
#[derive(Debug)]
pub(crate) struct TicketState {
    pub(crate) id: u64,
    pub(crate) tenant: String,
    pub(crate) priority: Priority,
    /// The query resolved against the catalog at submission — the
    /// pinned snapshot the ticket executes on.
    pub(crate) prepared: Prepared,
    /// Absolute expiry on the engine clock, when bounded.
    pub(crate) deadline: Option<Duration>,
    /// Engine-clock reading at admission.
    pub(crate) submitted_at: Duration,
    pub(crate) cancelled: AtomicBool,
    pub(crate) inner: Mutex<TicketInner>,
    pub(crate) done: Condvar,
}

impl TicketState {
    /// Whether the ticket's deadline has passed at clock reading `now`.
    pub(crate) fn expired(&self, now: Duration) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The token-bucket state behind one tenant's
/// [`SessionOptions::qps_cap`], in integer nano-tokens.
#[derive(Debug)]
struct TokenBucket {
    /// Nano-tokens available; one admission costs [`TOKEN`].
    tokens: u64,
    /// Engine-clock reading of the last refill.
    last_refill: Duration,
}

impl TokenBucket {
    /// A bucket starting full: the tenant's initial burst allowance is
    /// exactly `cap`.
    fn full(cap: u32, now: Duration) -> Self {
        Self {
            tokens: u64::from(cap).saturating_mul(TOKEN),
            last_refill: now,
        }
    }

    /// Accrues `cap` tokens per second since the last refill, capped at
    /// a full bucket. Exact in integer nanoseconds: advancing a manual
    /// clock by 500 ms at `cap = 2` yields precisely one token.
    fn refill(&mut self, cap: u32, now: Duration) {
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        let gained = elapsed
            .as_nanos()
            .saturating_mul(u128::from(cap))
            .min(u128::from(u64::MAX)) as u64;
        let cap_tokens = u64::from(cap).saturating_mul(TOKEN);
        self.tokens = self.tokens.saturating_add(gained).min(cap_tokens);
    }
}

/// Per-tenant admission bookkeeping: the caps from the last
/// [`SessionOptions`] that opened the tenant, plus live usage.
#[derive(Debug, Default)]
struct TenantState {
    max_in_flight: Option<usize>,
    qps_cap: Option<u32>,
    /// Live [`Session`] handles naming this tenant; the entry is
    /// dropped when this and `in_flight` both reach zero.
    sessions: usize,
    in_flight: usize,
    /// Lazily initialized (full) at the first capped submission; reset
    /// when a re-open changes `qps_cap`.
    bucket: Option<TokenBucket>,
}

/// A queued ticket, ordered for the per-class heap: earliest deadline
/// first, submission id as the tie-break — so a class whose tickets
/// carry no deadlines dequeues strictly FIFO.
#[derive(Debug)]
struct QueueEntry(Arc<TicketState>);

impl QueueEntry {
    fn key(&self) -> (Duration, u64) {
        (self.0.deadline.unwrap_or(Duration::MAX), self.0.id)
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    /// Reversed on purpose: [`BinaryHeap`] is a max-heap, so the
    /// smallest `(deadline, id)` key must compare greatest.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// One priority class's queue with **per-tenant fair share**: each
/// tenant gets its own deadline-ordered heap, and dequeue round-robins
/// across the tenants holding queued tickets — so one tenant
/// bulk-submitting a thousand tickets into a class cannot make a
/// co-tenant's single ticket wait behind all of them. Capacity and the
/// cross-class dispatch rules (aging, seniority) are unchanged; with a
/// single tenant queued the class degenerates to one plain
/// deadline-ordered queue.
#[derive(Debug, Default)]
struct ClassQueue {
    /// Per-tenant deadline-ordered heaps; a tenant's entry exists iff
    /// it has queued tickets.
    tenants: HashMap<String, BinaryHeap<QueueEntry>>,
    /// Round-robin dequeue order over the tenants in `tenants`; each
    /// appears exactly once.
    rr: VecDeque<String>,
    /// Total queued tickets across all tenants.
    len: usize,
}

impl ClassQueue {
    fn len(&self) -> usize {
        self.len
    }

    fn push(&mut self, ticket: Arc<TicketState>) {
        let heap = self.tenants.entry(ticket.tenant.clone()).or_default();
        if heap.is_empty() {
            self.rr.push_back(ticket.tenant.clone());
        }
        heap.push(QueueEntry(ticket));
        self.len += 1;
    }

    /// The ticket the next [`pop`](Self::pop) would return: the
    /// round-robin front tenant's earliest-deadline ticket.
    fn peek(&self) -> Option<&QueueEntry> {
        self.tenants.get(self.rr.front()?)?.peek()
    }

    fn pop(&mut self) -> Option<Arc<TicketState>> {
        let name = self.rr.pop_front()?;
        let heap = self
            .tenants
            .get_mut(&name)
            .expect("rr names tenants with queued tickets");
        let entry = heap.pop().expect("rr tenants have queued tickets");
        if heap.is_empty() {
            self.tenants.remove(&name);
        } else {
            self.rr.push_back(name);
        }
        self.len -= 1;
        Some(entry.0)
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    /// One bounded queue per priority class, indexed by
    /// [`Priority::index`]; within a class, dequeue is round-robin
    /// across tenants, earliest deadline first within a tenant.
    queues: [ClassQueue; 3],
    tenants: HashMap<String, TenantState>,
    shutdown: bool,
}

impl AdmissionState {
    fn queued(&self) -> usize {
        self.queues.iter().map(ClassQueue::len).sum()
    }
}

/// The admission queue, tenant registry, and dispatcher bookkeeping —
/// one per engine, shared by every session and ticket.
#[derive(Debug)]
pub(crate) struct SessionRuntime {
    cfg: AdmissionConfig,
    state: Mutex<AdmissionState>,
    /// Signalled on enqueue and on shutdown; the background dispatcher
    /// waits on it.
    work: Condvar,
    worker: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    short_circuits: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    deadline_expired: AtomicU64,
    internal_errors: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_shutdown: AtomicU64,
}

impl SessionRuntime {
    pub(crate) fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(AdmissionState::default()),
            work: Condvar::new(),
            worker: Mutex::new(None),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Starts the background dispatcher, when configured. The thread
    /// drains batches until shutdown, then empties the queues and
    /// exits.
    pub(crate) fn spawn_worker(self: &Arc<Self>, shared: &Arc<EngineShared>) {
        if !self.cfg.background_dispatcher {
            return;
        }
        let runtime = Arc::clone(self);
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("skyline-dispatch".into())
            .spawn(move || loop {
                let batch = {
                    let mut st = runtime.lock();
                    loop {
                        let batch = runtime.pop_batch(&mut st, shared.clock.now());
                        if !batch.is_empty() {
                            break batch;
                        }
                        if st.shutdown {
                            return;
                        }
                        st = runtime.work.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                runtime.run_batch_guarded(&shared, batch, true);
            })
            .expect("spawning the dispatcher thread");
        *self.worker.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
    }

    /// Runs one batch with a panic guard: if the batch core panics
    /// (an algorithm bug, a poisoned invariant), every ticket it had
    /// claimed still reaches a terminal [`EngineError::Internal`]
    /// outcome and the dispatcher survives — waiters must never hang
    /// on a dead thread.
    ///
    /// `steal` lets the batch core pull queued higher-class tickets in
    /// between this batch's pool-wide plans; it is `false` for the
    /// stolen sub-batches themselves, bounding the recursion.
    pub(crate) fn run_batch_guarded(
        &self,
        shared: &EngineShared,
        batch: Vec<Arc<TicketState>>,
        steal: bool,
    ) {
        let mirror = batch.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.run_ticket_batch(self, batch, steal);
        }));
        if outcome.is_err() {
            for ticket in mirror {
                let pending = ticket
                    .inner
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .outcome
                    .is_none();
                if pending {
                    let wait = shared.clock.now().saturating_sub(ticket.submitted_at);
                    self.complete(&ticket, Err(EngineError::Internal), wait, None);
                }
            }
        }
    }

    /// Registers (or re-registers) a tenant with the given caps and
    /// takes one session reference on it.
    pub(crate) fn open(&self, options: &SessionOptions) {
        let mut st = self.lock();
        let tenant = st.tenants.entry(options.tenant.clone()).or_default();
        tenant.max_in_flight = options.max_in_flight;
        if tenant.qps_cap != options.qps_cap {
            // A changed rate cap re-seeds the bucket at the new size on
            // the next capped submission; re-opening with the *same*
            // cap must not hand the tenant a fresh burst.
            tenant.bucket = None;
        }
        tenant.qps_cap = options.qps_cap;
        tenant.sessions += 1;
    }

    /// Takes one more session reference on `tenant` (session clone).
    pub(crate) fn retain_tenant(&self, tenant: &str) {
        let mut st = self.lock();
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.sessions += 1;
        }
    }

    /// Releases one session reference; the tenant's bookkeeping is
    /// dropped once no session holds it and nothing is in flight, so
    /// high-cardinality tenant names cannot grow the registry without
    /// bound.
    pub(crate) fn release_tenant(&self, tenant: &str) {
        let mut st = self.lock();
        if let Some(t) = st.tenants.get_mut(tenant) {
            t.sessions = t.sessions.saturating_sub(1);
            if t.sessions == 0 && t.in_flight == 0 {
                st.tenants.remove(tenant);
            }
        }
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    pub(crate) fn has_worker(&self) -> bool {
        self.worker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Non-blocking submission: validate, short-circuit on a cache hit,
    /// otherwise pass admission (shutdown, quotas, class capacity) and
    /// enqueue. The returned state is either already terminal (hit) or
    /// queued for the dispatcher.
    ///
    /// `enforce_quotas` is false only for the engine's internal direct
    /// session: its submissions still count in-flight (for tenant
    /// bookkeeping) but are never rejected by caps — even if a user
    /// opens a capped session under the same tenant name, the blocking
    /// `execute` wrappers keep their no-quota-rejection contract.
    pub(crate) fn submit(
        &self,
        shared: &Arc<EngineShared>,
        tenant: &str,
        class: Priority,
        enforce_quotas: bool,
        query: &SkylineQuery,
    ) -> Result<Arc<TicketState>, EngineError> {
        let prepared = shared.prepare(query)?;
        if let Some(pin) = query.options().pin_version() {
            let current = prepared.entry.version();
            if current != pin {
                return Err(EngineError::VersionUnavailable {
                    requested: pin,
                    current,
                });
            }
        }
        if self.is_shutdown() {
            self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Rejected(RejectReason::Shutdown));
        }
        // A query may *lower* its class (a high-priority tenant
        // demoting bulk work) but never raise it above the session's —
        // otherwise any flooder could submit straight into High and
        // defeat class isolation.
        let priority = query.options().priority().map_or(class, |p| p.min(class));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Telemetry counts every attempt that reaches admission with a
        // resolved class — including the ones rejected below — mirroring
        // the client's view of "submissions".
        if let Some(tel) = &shared.telemetry {
            tel.on_submitted(priority);
        }

        // Counted cache probe: hits short-circuit admission — no queue
        // slot, no quota consumption — but still feed the feedback loop
        // (inside `probe`) so the report sees the whole workload.
        if let Some(hit) = shared.probe(&prepared, Instant::now(), shared.clock_now()) {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            let submitted_at = shared.clock.now();
            shared.queue_waits.record(priority, Duration::ZERO);
            let trace = shared.telemetry.as_ref().map(|tel| {
                let trace = Arc::new(QueryTrace {
                    query_id: id,
                    dataset: prepared.entry.name().to_string(),
                    strategy: "cache",
                    reason: hit.plan.reason,
                    candidates: Vec::new(),
                    spans: vec![TraceSpan {
                        kind: SpanKind::CacheHit,
                        shard: None,
                        start: submitted_at,
                        duration: Duration::ZERO,
                        dominance_tests: 0,
                    }],
                    queue_wait: Duration::ZERO,
                    total: Duration::ZERO,
                    dominance_tests: 0,
                    cache_hit: true,
                });
                tel.on_completed(priority);
                tel.record_latency(Duration::ZERO);
                tel.slow_log().offer(&trace);
                trace
            });
            let state = Arc::new(TicketState {
                id,
                tenant: tenant.to_string(),
                priority,
                prepared,
                deadline: None,
                submitted_at,
                cancelled: AtomicBool::new(false),
                inner: Mutex::new(TicketInner {
                    outcome: Some(Ok(hit)),
                    queue_wait: Some(Duration::ZERO),
                    trace,
                }),
                done: Condvar::new(),
            });
            return Ok(state);
        }

        let now = shared.clock.now();
        let mut st = self.lock();
        if st.shutdown {
            drop(st);
            self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Rejected(RejectReason::Shutdown));
        }
        let tstate = st
            .tenants
            .get_mut(tenant)
            .expect("sessions register their tenant at open");
        if enforce_quotas {
            if let Some(cap) = tstate.qps_cap {
                // Token bucket on the engine clock: burst up to `cap`,
                // sustained refill of `cap` per second. Unlike the
                // fixed window it replaced, no boundary instant doubles
                // the burst allowance.
                let bucket = tstate
                    .bucket
                    .get_or_insert_with(|| TokenBucket::full(cap, now));
                bucket.refill(cap, now);
                if bucket.tokens < TOKEN {
                    drop(st);
                    self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = &shared.telemetry {
                        tel.on_rejected_quota(priority);
                    }
                    return Err(EngineError::Rejected(RejectReason::QuotaExceeded {
                        tenant: tenant.to_string(),
                        quota: QuotaKind::Rate,
                    }));
                }
            }
            if let Some(cap) = tstate.max_in_flight {
                if tstate.in_flight >= cap {
                    drop(st);
                    self.rejected_quota.fetch_add(1, Ordering::Relaxed);
                    if let Some(tel) = &shared.telemetry {
                        tel.on_rejected_quota(priority);
                    }
                    return Err(EngineError::Rejected(RejectReason::QuotaExceeded {
                        tenant: tenant.to_string(),
                        quota: QuotaKind::InFlight,
                    }));
                }
            }
        }
        let queued = st.queues[priority.index()].len();
        if queued >= self.cfg.queue_capacity {
            drop(st);
            self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            if let Some(tel) = &shared.telemetry {
                tel.on_rejected_queue_full(priority);
            }
            return Err(EngineError::Rejected(RejectReason::QueueFull { queued }));
        }
        // Admitted: commit the quota usage and enqueue.
        let tstate = st
            .tenants
            .get_mut(tenant)
            .expect("checked just above under the same lock");
        if enforce_quotas {
            if let Some(bucket) = tstate.bucket.as_mut() {
                bucket.tokens = bucket.tokens.saturating_sub(TOKEN);
            }
        }
        tstate.in_flight += 1;
        let state = Arc::new(TicketState {
            id,
            tenant: tenant.to_string(),
            priority,
            prepared,
            // Saturating: Duration::MAX as a "no deadline" sentinel
            // must not panic the submit path (quota already committed).
            deadline: query.options().deadline().map(|d| now.saturating_add(d)),
            submitted_at: now,
            cancelled: AtomicBool::new(false),
            inner: Mutex::new(TicketInner::default()),
            done: Condvar::new(),
        });
        st.queues[priority.index()].push(Arc::clone(&state));
        drop(st);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.work.notify_one();
        Ok(state)
    }

    /// A queued ticket's class for dispatch ordering: its admitted
    /// class plus the aging boost its queue wait has earned
    /// ([`AdmissionConfig::age_boost_after`]), capped at
    /// [`Priority::High`].
    fn effective_class(&self, ticket: &TicketState, now: Duration) -> usize {
        let native = ticket.priority.index();
        let step = self.cfg.age_boost_after;
        if step.is_zero() {
            return native;
        }
        let wait = now.saturating_sub(ticket.submitted_at);
        let boost = (wait.as_nanos() / step.as_nanos()).min(2) as usize;
        (native + boost).min(Priority::High.index())
    }

    /// Pops the best queued ticket: highest *effective* class first
    /// (ties broken by seniority — earlier submission wins, so an aged
    /// Low beats a fresh High of equal effective class), deadline order
    /// within a class. `floor`, when set, only accepts tickets whose
    /// effective class is strictly above it.
    fn pop_next(
        &self,
        st: &mut AdmissionState,
        now: Duration,
        floor: Option<Priority>,
    ) -> Option<Arc<TicketState>> {
        let mut best: Option<(usize, usize, Duration, u64)> = None;
        for class in 0..st.queues.len() {
            let Some(entry) = st.queues[class].peek() else {
                continue;
            };
            let t = &entry.0;
            let eff = self.effective_class(t, now);
            if floor.is_some_and(|f| eff <= f.index()) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((_, beff, bsub, bid)) => {
                    eff > *beff || (eff == *beff && (t.submitted_at, t.id) < (*bsub, *bid))
                }
            };
            if better {
                best = Some((class, eff, t.submitted_at, t.id));
            }
        }
        best.map(|(class, ..)| st.queues[class].pop().expect("peeked just above"))
    }

    /// Pops up to `max_batch` tickets by effective class (aging
    /// included), earliest deadline first within a class.
    fn pop_batch(&self, st: &mut AdmissionState, now: Duration) -> Vec<Arc<TicketState>> {
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_batch {
            match self.pop_next(st, now, None) {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        batch
    }

    /// Pops queued tickets whose effective class is strictly above
    /// `floor` — the batch core calls this between a batch's pool-wide
    /// plans so late-arriving (or newly aged) higher-class tickets
    /// overtake the remainder of an in-flight batch instead of waiting
    /// it out.
    pub(crate) fn pop_higher(&self, now: Duration, floor: Priority) -> Vec<Arc<TicketState>> {
        if floor == Priority::High {
            return Vec::new();
        }
        let mut st = self.lock();
        let mut batch = Vec::new();
        while batch.len() < self.cfg.max_batch {
            match self.pop_next(&mut st, now, Some(floor)) {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        batch
    }

    /// Pops and runs one batch; returns how many tickets it processed
    /// (0 when the queues were empty).
    pub(crate) fn dispatch_batch(&self, shared: &Arc<EngineShared>) -> usize {
        let batch = {
            let mut st = self.lock();
            self.pop_batch(&mut st, shared.clock.now())
        };
        if batch.is_empty() {
            return 0;
        }
        let n = batch.len();
        self.run_batch_guarded(shared, batch, true);
        n
    }

    /// Closes admission and drains: joins the background dispatcher
    /// (which empties the queues before exiting) or, without one,
    /// dispatches inline until nothing is queued. Idempotent.
    pub(crate) fn shutdown(&self, shared: &Arc<EngineShared>) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.work.notify_all();
        let worker = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = worker {
            let _ = handle.join();
        }
        while self.dispatch_batch(shared) > 0 {}
    }

    /// Records a ticket's terminal outcome (and its sealed trace, when
    /// the engine traced it), releases its tenant's in-flight slot, and
    /// wakes every waiter.
    pub(crate) fn complete(
        &self,
        ticket: &TicketState,
        outcome: Result<QueryResult, EngineError>,
        queue_wait: Duration,
        trace: Option<Arc<QueryTrace>>,
    ) {
        {
            let mut st = self.lock();
            if let Some(t) = st.tenants.get_mut(&ticket.tenant) {
                t.in_flight = t.in_flight.saturating_sub(1);
                if t.sessions == 0 && t.in_flight == 0 {
                    st.tenants.remove(&ticket.tenant);
                }
            }
        }
        match &outcome {
            Err(EngineError::Cancelled) => self.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(EngineError::DeadlineExceeded) => {
                self.deadline_expired.fetch_add(1, Ordering::Relaxed)
            }
            Err(EngineError::Internal) => self.internal_errors.fetch_add(1, Ordering::Relaxed),
            _ => self.completed.fetch_add(1, Ordering::Relaxed),
        };
        {
            let mut inner = ticket.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.outcome = Some(outcome);
            inner.queue_wait = Some(queue_wait);
            inner.trace = trace;
        }
        ticket.done.notify_all();
    }

    /// Snapshot of the admission counters.
    pub(crate) fn stats(&self) -> SessionStats {
        let (queued, tenants) = {
            let st = self.lock();
            (st.queued(), st.tenants.len())
        };
        SessionStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            queued,
            tenants,
        }
    }
}

/// A tenant's handle for submitting queries; opened with
/// [`Engine::open_session`](crate::Engine::open_session). Cheap to
/// clone and freely shared across threads; every clone submits under
/// the same tenant identity and quota. The tenant's admission
/// bookkeeping lives as long as any of its sessions (or in-flight
/// tickets) do, and is dropped afterwards.
#[derive(Debug)]
pub struct Session {
    shared: Arc<EngineShared>,
    runtime: Arc<SessionRuntime>,
    tenant: String,
    priority: Priority,
    /// False only for the engine's internal direct session: submissions
    /// bypass the tenant's quota caps (the blocking `execute` wrappers
    /// must never surface a quota rejection, even when a user session
    /// puts caps on the same tenant name).
    enforce_quotas: bool,
}

impl Clone for Session {
    fn clone(&self) -> Self {
        self.runtime.retain_tenant(&self.tenant);
        Self {
            shared: Arc::clone(&self.shared),
            runtime: Arc::clone(&self.runtime),
            tenant: self.tenant.clone(),
            priority: self.priority,
            enforce_quotas: self.enforce_quotas,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.runtime.release_tenant(&self.tenant);
    }
}

impl Session {
    pub(crate) fn open(
        shared: &Arc<EngineShared>,
        runtime: &Arc<SessionRuntime>,
        options: SessionOptions,
    ) -> Self {
        Self::build(shared, runtime, options, true)
    }

    /// The engine's internal session behind the blocking wrappers:
    /// quota enforcement off.
    pub(crate) fn open_internal(
        shared: &Arc<EngineShared>,
        runtime: &Arc<SessionRuntime>,
        options: SessionOptions,
    ) -> Self {
        Self::build(shared, runtime, options, false)
    }

    fn build(
        shared: &Arc<EngineShared>,
        runtime: &Arc<SessionRuntime>,
        options: SessionOptions,
        enforce_quotas: bool,
    ) -> Self {
        runtime.open(&options);
        Self {
            shared: Arc::clone(shared),
            runtime: Arc::clone(runtime),
            tenant: options.tenant,
            priority: options.priority,
            enforce_quotas,
        }
    }

    /// The tenant this session submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The session's default priority class.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Submits a query without blocking.
    ///
    /// On success the [`QueryTicket`] either is already complete (the
    /// result cache answered at submission) or sits in the admission
    /// queue for the dispatcher. Errors are immediate: invalid queries,
    /// pin mismatches ([`EngineError::VersionUnavailable`]), and
    /// admission rejections ([`EngineError::Rejected`]) never create a
    /// ticket.
    pub fn submit(&self, query: &SkylineQuery) -> Result<QueryTicket, EngineError> {
        let state = self.runtime.submit(
            &self.shared,
            &self.tenant,
            self.priority,
            self.enforce_quotas,
            query,
        )?;
        Ok(QueryTicket {
            state,
            runtime: Arc::clone(&self.runtime),
            shared: Arc::clone(&self.shared),
        })
    }

    /// Submit-and-wait convenience: the session-scoped equivalent of
    /// [`Engine::execute`](crate::Engine::execute).
    pub fn execute(&self, query: &SkylineQuery) -> Result<QueryResult, EngineError> {
        self.submit(query)?.wait()
    }
}

/// A handle to one submitted query.
///
/// The ticket resolves to exactly one terminal outcome: a
/// [`QueryResult`], or [`EngineError::Cancelled`] /
/// [`EngineError::DeadlineExceeded`] when it terminated without
/// executing. Dropping a ticket does not cancel it.
#[derive(Debug)]
pub struct QueryTicket {
    state: Arc<TicketState>,
    runtime: Arc<SessionRuntime>,
    shared: Arc<EngineShared>,
}

impl QueryTicket {
    /// Engine-unique ticket id (also carried by rejection-free logs).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> &str {
        &self.state.tenant
    }

    /// The class the ticket was admitted under.
    pub fn priority(&self) -> Priority {
        self.state.priority
    }

    /// The dataset version the ticket's snapshot observes.
    pub fn dataset_version(&self) -> u64 {
        self.state.prepared.entry.version()
    }

    /// Non-blocking check: the terminal outcome, if the ticket has one.
    pub fn poll(&self) -> Option<Result<QueryResult, EngineError>> {
        self.state
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .outcome
            .clone()
    }

    /// How long the ticket waited in the admission queue, once it has
    /// terminated (zero for cache-hit short-circuits).
    pub fn queue_wait(&self) -> Option<Duration> {
        self.state
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue_wait
    }

    /// The query's execution trace: per-stage spans with wall time on
    /// the engine clock and dominance-test counts, the planner's
    /// decision, and the cache verdict. Present once the ticket
    /// terminated successfully on an engine with
    /// [`TelemetryConfig::enabled`](crate::TelemetryConfig::enabled);
    /// `None` while pending, after a failed outcome, or with telemetry
    /// off.
    pub fn trace(&self) -> Option<Arc<QueryTrace>> {
        self.state
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trace
            .clone()
    }

    /// Blocks until the ticket terminates.
    ///
    /// With the background dispatcher running this parks on the
    /// ticket's condvar. Without one (manual dispatch mode) the waiting
    /// thread drives the queue itself, so `wait` — and therefore
    /// [`Engine::execute`](crate::Engine::execute) — still completes.
    pub fn wait(&self) -> Result<QueryResult, EngineError> {
        if self.runtime.has_worker() {
            let mut inner = self.state.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(out) = &inner.outcome {
                    return out.clone();
                }
                inner = self
                    .state
                    .done
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        loop {
            if let Some(out) = self.poll() {
                return out;
            }
            if self.runtime.dispatch_batch(&self.shared) == 0 {
                // Our ticket is inside a batch another thread is
                // running; park briefly on the completion condvar
                // (complete() notifies it) instead of spinning.
                self.park_briefly();
            }
        }
    }

    /// Parks on the completion condvar for at most a millisecond — the
    /// manual-mode idle wait while another thread runs the batch that
    /// claimed this ticket.
    fn park_briefly(&self) {
        let inner = self.state.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.outcome.is_none() {
            let _ = self
                .state
                .done
                .wait_timeout(inner, Duration::from_millis(1));
        }
    }

    /// Blocks up to `timeout` — measured on the **engine clock**, the
    /// same timebase as query deadlines — for the ticket to terminate;
    /// `None` on timeout: the ticket stays queued and a later
    /// [`wait`](Self::wait)/[`poll`](Self::poll) can still collect it.
    ///
    /// Under a [`ManualClock`](crate::ManualClock) the timeout only
    /// elapses when the test advances the clock, so timeouts and
    /// deadlines can never disagree; waiters park in short real-time
    /// slices ([`Clock::park_slice`](crate::Clock::park_slice)) between
    /// re-reads of the manual time.
    ///
    /// In manual dispatch mode the waiting thread executes dispatch
    /// passes itself, and a pass is not preemptible: the return can
    /// overshoot `timeout` by however long one batch takes to run.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResult, EngineError>> {
        let clock = &self.shared.clock;
        let expires = clock.now().saturating_add(timeout);
        if self.runtime.has_worker() {
            let mut inner = self.state.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(out) = &inner.outcome {
                    return Some(out.clone());
                }
                let now = clock.now();
                if now >= expires {
                    return None;
                }
                inner = self
                    .state
                    .done
                    .wait_timeout(inner, clock.park_slice(expires - now))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
        loop {
            if let Some(out) = self.poll() {
                return Some(out);
            }
            if clock.now() >= expires {
                return None;
            }
            if self.runtime.dispatch_batch(&self.shared) == 0 {
                self.park_briefly();
            }
        }
    }

    /// Requests cancellation. A ticket still queued when the dispatcher
    /// reaches it terminates with [`EngineError::Cancelled`] and never
    /// runs its plan; one already executing runs to completion.
    ///
    /// Returns `true` when the request was registered before the ticket
    /// had a terminal outcome (the plan may still complete if it was
    /// already running), `false` when the outcome already existed.
    pub fn cancel(&self) -> bool {
        self.state.cancelled.store(true, Ordering::SeqCst);
        self.state
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .outcome
            .is_none()
    }
}
