//! Engine behaviour required by the acceptance criteria: subspace
//! correctness against brute force, cache semantics across
//! registrations, invalidation, concurrent batched execution, and
//! incremental maintenance under mutation.

use std::sync::Arc;

use skyline_core::verify;
use skyline_data::{generate, Distribution, Preference};
use skyline_engine::{Engine, EngineConfig, SkylineQuery, Strategy};
use skyline_parallel::ThreadPool;

fn engine(threads: usize) -> Engine {
    Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

#[test]
fn subspace_results_equal_brute_force_on_the_full_projection() {
    let engine = engine(4);
    let pool = ThreadPool::new(2);
    for (name, dist) in [
        ("corr", Distribution::Correlated),
        ("indep", Distribution::Independent),
        ("anti", Distribution::Anticorrelated),
    ] {
        let data = generate(dist, 2_500, 5, 21, &pool);
        let reference = data.clone();
        engine.register(name, data);
        for dims in [
            &[0usize][..],
            &[4],
            &[0, 1],
            &[2, 4],
            &[0, 2, 3],
            &[1, 2, 3, 4],
            &[0, 1, 2, 3, 4],
        ] {
            // Brute force over the materialised projection…
            let projected = reference.project(dims).unwrap();
            let expect = verify::naive_skyline(&projected);
            // …must equal the engine's subspace path (which projects
            // lazily or not at all).
            let got = engine
                .execute(&SkylineQuery::new(name).dims(dims.iter().copied()))
                .unwrap();
            assert_eq!(got.indices(), expect.as_slice(), "{name} {dims:?}");
        }
    }
}

#[test]
fn subspace_with_preferences_matches_negated_projection() {
    let engine = engine(2);
    let pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 1_200, 4, 33, &pool);
    let reference = data.clone();
    engine.register("d", data);
    let dims = [1usize, 3];
    let prefs = [Preference::Max, Preference::Min];
    let projected = reference
        .project(&dims)
        .unwrap()
        .with_preferences(&prefs)
        .unwrap();
    let expect = verify::naive_skyline(&projected);
    let got = engine
        .execute(&SkylineQuery::new("d").dims(dims).preference(prefs))
        .unwrap();
    assert_eq!(got.indices(), expect.as_slice());
}

#[test]
fn cache_hit_returns_identical_indices_after_unrelated_registrations() {
    let engine = engine(4);
    let pool = ThreadPool::new(2);
    engine.register(
        "target",
        generate(Distribution::Anticorrelated, 15_000, 4, 5, &pool),
    );

    let query = SkylineQuery::new("target").dims([0, 1, 2]);
    let first = engine.execute(&query).unwrap();
    assert!(!first.cache_hit);

    // Unrelated datasets come and go.
    for i in 0..5 {
        let name = format!("noise{i}");
        engine.register(
            &name,
            generate(Distribution::Independent, 2_000, 3, i, &pool),
        );
        engine.execute(&SkylineQuery::new(&name)).unwrap();
    }
    engine.evict("noise0");

    let second = engine.execute(&query).unwrap();
    assert!(second.cache_hit, "unrelated registrations must not evict");
    assert_eq!(second.plan.strategy, Strategy::Cached);
    assert!(second.stats.is_none(), "hits never recompute");
    assert_eq!(first.indices(), second.indices());
    assert_eq!(first.dataset_version, second.dataset_version);
}

#[test]
fn reregistering_invalidates_only_that_dataset() {
    let engine = engine(2);
    let pool = ThreadPool::new(2);
    engine.register("a", generate(Distribution::Independent, 3_000, 3, 1, &pool));
    engine.register("b", generate(Distribution::Independent, 3_000, 3, 2, &pool));
    let qa = SkylineQuery::new("a");
    let qb = SkylineQuery::new("b");
    let a1 = engine.execute(&qa).unwrap();
    engine.execute(&qb).unwrap();

    // Re-register `a` with different points: its result must be
    // recomputed, `b`'s must still hit.
    let data2 = generate(Distribution::Independent, 3_000, 3, 99, &pool);
    let expect2 = verify::naive_skyline(&data2);
    let v2 = engine.register("a", data2);
    assert!(v2 > a1.dataset_version);

    let a2 = engine.execute(&qa).unwrap();
    assert!(!a2.cache_hit, "stale result must not be served");
    assert_eq!(a2.dataset_version, v2);
    assert_eq!(a2.indices(), expect2.as_slice());

    let b2 = engine.execute(&qb).unwrap();
    assert!(b2.cache_hit, "sibling dataset kept its cache entries");

    // Eviction empties the name and errors subsequent queries.
    assert!(engine.evict("a"));
    assert!(!engine.evict("a"));
    assert!(engine.execute(&qa).is_err());
}

#[test]
fn concurrent_execute_batch_agrees_with_sequential_execution() {
    // 8 threads hammering one engine with mixed batches must produce
    // exactly what a fresh single-threaded engine produces.
    let shared = Arc::new(engine(4));
    let pool = ThreadPool::new(2);
    let mut datasets = Vec::new();
    for (i, dist) in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::Anticorrelated,
    ]
    .iter()
    .enumerate()
    {
        let name = format!("ds{i}");
        let data = generate(*dist, 6_000, 4, 40 + i as u64, &pool);
        shared.register(&name, data.clone());
        datasets.push((name, data));
    }

    let queries: Vec<SkylineQuery> = (0..3)
        .flat_map(|i| {
            let name = format!("ds{i}");
            vec![
                SkylineQuery::new(&name),
                SkylineQuery::new(&name).dims([0, 1]),
                SkylineQuery::new(&name).dims([1, 2, 3]),
                SkylineQuery::new(&name).dims([2]),
                SkylineQuery::new(&name).dims([0, 3]).limit(5),
            ]
        })
        .collect();

    // Sequential ground truth from brute force (not from the engine).
    let truth: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            let (_, data) = datasets
                .iter()
                .find(|(n, _)| n == q.dataset())
                .expect("known dataset");
            let dims: Vec<usize> = match q.selected_dims() {
                Some(d) => d.to_vec(),
                None => (0..data.dims()).collect(),
            };
            let mut sky = verify::naive_skyline_on(data, &dims);
            if let Some(k) = q.result_limit() {
                sky.truncate(k);
            }
            sky
        })
        .collect();

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let queries = queries.clone();
            let truth = truth.clone();
            std::thread::spawn(move || {
                for round in 0..4 {
                    // Rotate the batch so threads collide on different
                    // queries each round.
                    let k = (t + round) % queries.len();
                    let batch: Vec<SkylineQuery> =
                        queries[k..].iter().chain(&queries[..k]).cloned().collect();
                    let results = shared.execute_batch(&batch);
                    for (j, r) in results.iter().enumerate() {
                        let qi = (k + j) % queries.len();
                        let r = r.as_ref().expect("valid query");
                        assert_eq!(
                            r.indices(),
                            truth[qi].as_slice(),
                            "thread {t} round {round} query {qi}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The workload repeated identical queries: the cache must show it.
    let stats = shared.cache_stats();
    assert!(stats.hits > 0, "repeated batches should hit: {stats:?}");
}

/// The expected skyline of a mutable dataset: naive over the live
/// snapshot, mapped back to stable ids.
fn expected_skyline(engine: &Engine, name: &str) -> Vec<u32> {
    let entry = engine.dataset(name).expect("registered");
    verify::naive_skyline(&entry.snapshot())
        .iter()
        .map(|&k| entry.live_ids()[k as usize])
        .collect()
}

#[test]
fn mutation_stream_tracks_brute_force_across_all_paths() {
    // A long insert/delete stream against one dataset; after every
    // batch the full-space query must equal brute force over the
    // survivors, whichever path served it (patched hit, delta plan,
    // recompute, or post-compaction cold run).
    let engine = engine(4);
    let pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 4_000, 3, 71, &pool);
    engine.register("m", data);
    let q = SkylineQuery::new("m");
    engine.execute(&q).unwrap();

    let mut seed = 0x5151u64;
    let mut next = move |bound: usize| {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((seed >> 33) as usize) % bound.max(1)
    };
    for round in 0..30 {
        if round % 3 == 2 {
            let entry = engine.dataset("m").unwrap();
            let live = entry.live_ids();
            let victim = live[next(live.len())];
            engine.delete("m", &[victim]).unwrap();
        } else {
            let rows: Vec<Vec<f32>> = (0..1 + next(3))
                .map(|_| (0..3).map(|_| next(1_000) as f32 / 1_000.0).collect())
                .collect();
            engine.insert("m", &rows).unwrap();
        }
        let got = engine.execute(&q).unwrap();
        assert_eq!(
            got.indices(),
            expected_skyline(&engine, "m").as_slice(),
            "round {round} via {:?}",
            got.plan.strategy
        );
    }
    let stats = engine.cache_stats();
    assert!(stats.patches > 0, "insert rounds must patch: {stats:?}");
}

#[test]
fn concurrent_mutations_and_queries_stay_consistent() {
    // Writers mutate two datasets while readers hammer them with
    // batches. Every result must be internally consistent: a valid
    // skyline of *some* version the reader could have observed —
    // checked here as "all returned ids live at some point" plus a
    // final quiescent equality check against brute force.
    let shared = Arc::new(engine(4));
    let pool = ThreadPool::new(2);
    for name in ["a", "b"] {
        shared.register(
            name,
            generate(Distribution::Independent, 3_000, 3, 5, &pool),
        );
    }

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let name = if w == 0 { "a" } else { "b" };
                for i in 0..40u32 {
                    let v = (i as f32 + 1.0) / 100.0;
                    shared
                        .insert(name, &[vec![v, 1.0 - v, v * 0.5]])
                        .expect("insert");
                    if i % 4 == 3 {
                        let entry = shared.dataset(name).expect("registered");
                        let victim = *entry.live_ids().last().expect("non-empty");
                        shared.delete(name, &[victim]).expect("live victim");
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let queries = vec![
                    SkylineQuery::new("a"),
                    SkylineQuery::new("a").dims([0, 1]),
                    SkylineQuery::new("b").dims([1, 2]),
                    SkylineQuery::new("b"),
                ];
                for _ in 0..25 {
                    for r in shared.execute_batch(&queries) {
                        let r = r.expect("valid query");
                        // Ascending, duplicate-free ids.
                        assert!(r.indices().windows(2).all(|w| w[0] < w[1]));
                    }
                }
            })
        })
        .collect();
    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }

    // Quiescent: results equal brute force for the final version.
    for name in ["a", "b"] {
        let got = shared.execute(&SkylineQuery::new(name)).unwrap();
        assert_eq!(got.indices(), expected_skyline(&shared, name).as_slice());
    }
}

#[test]
fn byte_budget_bounds_resident_results() {
    // A tiny budget: anticorrelated skylines are big, so only a few
    // fit; the cache must stay within budget and keep serving.
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        cache_bytes: 4 << 10,
        ..EngineConfig::default()
    });
    let pool = ThreadPool::new(2);
    engine.register(
        "d",
        generate(Distribution::Anticorrelated, 9_000, 4, 31, &pool),
    );
    for dims in [
        &[0usize, 1][..],
        &[1, 2],
        &[2, 3],
        &[0, 2],
        &[1, 3],
        &[0, 1, 2],
        &[1, 2, 3],
        &[0, 1, 2, 3],
    ] {
        engine
            .execute(&SkylineQuery::new("d").dims(dims.iter().copied()))
            .unwrap();
    }
    let stats = engine.cache_stats();
    assert!(stats.bytes <= stats.budget_bytes, "{stats:?}");
    assert_eq!(stats.budget_bytes, 4 << 10);
    // The budget must bite somewhere: entries evicted under pressure,
    // or a result too large for the whole budget left uncached.
    assert!(
        stats.evictions > 0 || stats.insertions < 8,
        "budget never bit: {stats:?}"
    );
    assert!(stats.entries < 8, "all eight results cannot fit: {stats:?}");
}

#[test]
fn cache_patches_forward_across_three_insert_batches() {
    // Three insert batches in a row: the cached full-space result must
    // be carried across every version hop (a chain of patches, not one),
    // staying a cache hit and staying correct throughout.
    let engine = engine(2);
    let pool = ThreadPool::new(2);
    engine.register(
        "d",
        generate(Distribution::Independent, 2_000, 3, 77, &pool),
    );
    let q = SkylineQuery::new("d");
    let cold = engine.execute(&q).unwrap();
    assert!(!cold.cache_hit);

    for batch in 0..3u32 {
        let rows: Vec<Vec<f32>> = (0..2)
            .map(|k| {
                let v = 0.01 + 0.001 * (batch * 2 + k) as f32;
                vec![v, 1.0 - v, v]
            })
            .collect();
        let report = engine.insert("d", &rows).unwrap();
        assert_eq!(report.cache_patched, 1, "batch {batch} patches the entry");
        assert_eq!(report.cache_dropped, 0);

        let warm = engine.execute(&q).unwrap();
        assert!(warm.cache_hit, "batch {batch} keeps the entry servable");
        assert_eq!(warm.dataset_version, report.version);
        let entry = engine.dataset("d").unwrap();
        let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
            .iter()
            .map(|&k| entry.live_ids()[k as usize])
            .collect();
        assert_eq!(warm.indices(), expect.as_slice(), "batch {batch}");
    }
    assert!(engine.cache_stats().patches >= 3);
}

#[test]
fn zero_budget_engine_survives_mutations_and_stays_correct() {
    // cache_bytes = 0 disables caching entirely: no hits, no patches,
    // no delta plans — but mutations and queries must keep agreeing
    // with the naive reference.
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        cache_bytes: 0,
        ..EngineConfig::default()
    });
    let pool = ThreadPool::new(2);
    engine.register(
        "d",
        generate(Distribution::Independent, 1_500, 3, 99, &pool),
    );
    let q = SkylineQuery::new("d");
    let first = engine.execute(&q).unwrap();
    assert!(!first.cache_hit);

    let report = engine.insert("d", &[vec![0.001, 0.001, 0.001]]).unwrap();
    assert_eq!(report.cache_patched, 0);
    let victim = first.indices()[0];
    engine.delete("d", &[victim]).unwrap();

    let after = engine.execute(&q).unwrap();
    assert!(!after.cache_hit);
    assert!(
        !matches!(after.plan.strategy, Strategy::Delta { .. }),
        "no cache means no prior result to patch from"
    );
    let entry = engine.dataset("d").unwrap();
    let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
        .iter()
        .map(|&k| entry.live_ids()[k as usize])
        .collect();
    assert_eq!(after.indices(), expect.as_slice());
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.patches, stats.entries), (0, 0, 0));
}
