//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the API that `skyline-parallel` uses —
//! [`Mutex`], [`MutexGuard`], and [`Condvar`] — on top of `std::sync`.
//! Like the real crate (and unlike `std`), locks are **not poisoned** by
//! panics: a panicking region must leave protected data consistent on its
//! own, which the pool's completion protocol guarantees.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available. A poisoned
    /// inner lock (some thread panicked while holding it) is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning. Spurious wakeups are
    /// possible, exactly as with the real crate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
