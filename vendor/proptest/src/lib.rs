//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the test suite uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, integer/float range strategies, tuple
//! strategies, [`collection::vec`], [`ProptestConfig`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated values in
//!   the assertion message; re-running reproduces it exactly because
//!   generation is deterministic (the RNG is seeded from the test name).
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Everything a test usually imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG; the `proptest!` macro derives the seed from the
    /// test's name so every test sees an independent, stable stream.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stable 64-bit FNV-1a hash, used to derive per-test seeds from names.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + off as i128) as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64);
        (v as f32).clamp(self.start, f32::from_bits(self.end.to_bits() - 1))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Asserts a condition inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a `proptest!` body (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that generates `cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_seed($crate::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest shim: {} failed on case {} of {} (deterministic; rerun reproduces)",
                        stringify!($name), case, config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1_000 {
            let v = (-4i8..=4).generate(&mut rng);
            assert!((-4..=4).contains(&v));
            let u = (1usize..=6).generate(&mut rng);
            assert!((1..=6).contains(&u));
            let f = (-2.0f32..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=3, 1usize..=4)
            .prop_flat_map(|(a, b)| collection::vec(0i8..=1, a * b))
            .prop_map(|v| v.len());
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let len = strat.generate(&mut rng);
            assert!((1..=12).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..=10, y in 0u32..=10) {
            prop_assert!(x + y <= 20);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
