//! Collection strategies.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// Size specification for [`vec()`]: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(vec(0u8..=9, 5).generate(&mut rng).len(), 5);
        for _ in 0..100 {
            let v = vec(0u8..=9, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x <= 9));
        }
    }
}
