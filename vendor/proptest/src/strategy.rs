//! The [`Strategy`] trait and its combinators.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, a strategy here is just a deterministic
/// generator: no value trees, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a function returning a new strategy,
    /// then draws from that (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}
