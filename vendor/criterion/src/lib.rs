//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset of the API the `crates/bench` benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and [`black_box`].
//!
//! Each benchmark is warmed up once, then timed for up to `sample_size`
//! iterations within a small wall-clock budget; the mean and best
//! iteration times are printed. There are no statistics, plots, or saved
//! baselines — this shim exists so `cargo bench` runs offline with
//! numbers good enough for relative comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget. Keeps full `cargo bench` runs in
/// minutes rather than hours; raise `sample_size` for finer numbers.
const BUDGET: Duration = Duration::from_millis(1500);

/// Prevents the optimiser from deleting a benchmark's result.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name plus an
/// input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_*` methods: either a plain string
/// or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display name of the benchmark.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Throughput annotation; recorded and echoed as elements/bytes per
/// second next to the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Decoded bytes per iteration (treated like `Bytes`).
    BytesDecimal(u64),
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly (one warm-up call, then measured
    /// iterations until the sample or time budget is reached).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy init
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < BUDGET {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        max_samples: sample_size.max(1),
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.samples.is_empty() {
        println!("{label:<56} no samples (routine never called iter?)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let best = *b.samples.iter().min().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if !mean.is_zero() => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<56} mean {:>12?}  best {:>12?}  ({} samples){rate}",
        mean,
        best,
        b.samples.len()
    );
}

/// A named set of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement wall-clock budget. Accepted for API
    /// compatibility; the shim keeps its fixed internal budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into_name(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into_name(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        run_one("", &id.into_name(), n, None, &mut f);
        self
    }

    /// Sets the default sample size for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // timing shim has no options to parse, so ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).into_name(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_name(), "x");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut ran = 0u32;
        g.sample_size(3).bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert!(ran >= 2); // warm-up + at least one sample
    }
}
