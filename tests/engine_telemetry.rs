//! Deterministic tests of the telemetry layer: trace spans timed on a
//! [`ManualClock`], histogram bucket arithmetic, the slow-query ring's
//! threshold and capacity, per-query counter isolation, and the
//! zero-overhead guarantee when telemetry is disabled.

use std::sync::Arc;
use std::time::Duration;

use skybench::{
    generate, AdmissionConfig, Dataset, Distribution, Engine, EngineConfig, EngineError, Histogram,
    ManualClock, SkylineQuery, SpanKind, TelemetryConfig, ThreadPool,
};

/// A 2-lane manual-dispatch engine on a shared manual clock: nothing
/// runs until [`Engine::pump`] and no duration elapses unless the test
/// advances the clock.
fn manual_engine(telemetry: TelemetryConfig) -> (Engine, Arc<ManualClock>) {
    let clock = ManualClock::shared();
    let engine = Engine::with_clock(
        EngineConfig {
            threads: 2,
            admission: AdmissionConfig {
                background_dispatcher: false,
                ..AdmissionConfig::default()
            },
            telemetry,
            ..EngineConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn skybench::Clock>,
    );
    engine.register(
        "d",
        Dataset::from_rows(&[
            vec![1.0, 9.0, 2.0, 8.0],
            vec![9.0, 1.0, 8.0, 2.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![2.0, 8.0, 1.0, 9.0],
        ])
        .unwrap(),
    );
    (engine, clock)
}

/// Distinct subspace queries so none is a cache duplicate of another.
fn distinct_query(i: usize) -> SkylineQuery {
    let subspaces: [&[usize]; 6] = [&[0], &[1], &[0, 1], &[1, 2], &[2, 3], &[0, 3]];
    SkylineQuery::new("d").dims(subspaces[i % subspaces.len()].iter().copied())
}

#[test]
fn trace_spans_are_exact_under_a_manual_clock() {
    let (engine, clock) = manual_engine(TelemetryConfig::default());
    let session = engine.open_session(skybench::SessionOptions::new("t"));

    let ticket = session.submit(&distinct_query(2)).unwrap();
    assert!(ticket.trace().is_none(), "no trace before dispatch");
    clock.advance(Duration::from_millis(5));
    engine.pump();

    let trace = ticket.trace().expect("terminal tickets carry a trace");
    assert!(!trace.cache_hit);
    assert_eq!(trace.queue_wait, Duration::from_millis(5));
    // The clock never moved after dispatch, so end-to-end time IS the
    // queue wait.
    assert_eq!(trace.total, Duration::from_millis(5));

    // Span ordering: admission wait (from submission time) first, then
    // planning, then execution spans, with the cache insert last.
    assert_eq!(trace.spans[0].kind, SpanKind::AdmissionWait);
    assert_eq!(trace.spans[0].start, Duration::ZERO);
    assert_eq!(trace.spans[0].duration, Duration::from_millis(5));
    assert_eq!(trace.spans[1].kind, SpanKind::Plan);
    assert_eq!(trace.spans.last().unwrap().kind, SpanKind::CacheInsert);
    // Every non-wait span ran while the clock stood still.
    for span in &trace.spans[1..] {
        assert_eq!(
            span.duration,
            Duration::ZERO,
            "{:?} saw the clock move",
            span.kind
        );
    }

    // A repeat of the same query is answered by the session-layer cache
    // short circuit and traced as such.
    let hit = session.submit(&distinct_query(2)).unwrap();
    let hit_trace = hit.trace().expect("cache hits are traced on submit");
    assert!(hit_trace.cache_hit);
    assert_eq!(hit_trace.strategy, "cache");
    assert_eq!(hit_trace.spans.len(), 1);
    assert_eq!(hit_trace.spans[0].kind, SpanKind::CacheHit);
    engine.shutdown();
}

/// `explain_analyze` on a cache hit must return a trace that says so:
/// the cache-probe span is present whether the hit is taken at
/// submission (the session short circuit) or at dispatch.
#[test]
fn explain_analyze_traces_cache_hits() {
    let (engine, _clock) = manual_engine(TelemetryConfig::default());
    let warm_session = engine.open_session(skybench::SessionOptions::new("w"));
    let warm = warm_session.submit(&distinct_query(3)).unwrap();
    engine.pump();
    assert!(!warm.trace().unwrap().cache_hit, "first run computes");

    // `explain_analyze` drives the same submission machinery, so the
    // repeat is served from the cache and the trace records the probe.
    std::thread::scope(|scope| {
        let engine = &engine;
        let analyzed = scope.spawn(move || engine.explain_analyze(&distinct_query(3)));
        // The analyze call blocks on its ticket; with manual dispatch a
        // cache hit resolves at submission, so no pump is needed — but
        // pump anyway to cover the dispatch-time path if probing moved.
        engine.pump();
        let (result, trace) = analyzed.join().expect("no panic").expect("valid query");
        assert!(result.cache_hit);
        assert!(trace.cache_hit);
        assert_eq!(trace.strategy, "cache");
        let probe = trace
            .span(SpanKind::CacheHit)
            .expect("cache-hit traces carry the probe span");
        assert_eq!(probe.dominance_tests, 0);
        assert_eq!(trace.dominance_tests, 0);
        assert!(trace.render().contains("cache_hit"), "{}", trace.render());
    });
    engine.shutdown();
}

/// The superspace seed: a cached subspace skyline at the same version
/// pre-filters a wider query's input, traced as a `cache_seed` span
/// whose dominance tests are part of the query's reported work.
#[test]
fn superspace_seed_prefilters_through_the_cache() {
    let pool = ThreadPool::new(2);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let data = generate(Distribution::Correlated, 12_000, 4, 42, &pool);
    engine.register("corr", data.clone());

    // Warm a strict-subspace skyline, small enough to seed with.
    let sub = engine
        .execute(&SkylineQuery::new("corr").dims([0, 1]))
        .unwrap();
    assert!(!sub.cache_hit);
    assert!(sub.total_skyline_size() <= 4_096, "seedable size");

    // The wider query plans with the seed and traces the filter pass.
    let query = SkylineQuery::new("corr").dims([0, 1, 2]);
    let (result, trace) = engine.explain_analyze(&query).expect("telemetry on");
    let seed = result
        .plan
        .superspace_seed
        .expect("a same-version cached subspace must seed the plan");
    assert_eq!(seed.dim_mask, 0b011);
    assert_eq!(seed.len, sub.total_skyline_size());
    let span = trace
        .span(SpanKind::CacheSeed)
        .expect("the filter pass is traced");
    assert!(span.dominance_tests > 0, "the filter did real tests");
    // Span-summed totals still reconcile with the run's statistics.
    let span_sum: u64 = trace.spans.iter().map(|s| s.dominance_tests).sum();
    assert_eq!(trace.dominance_tests, span_sum);
    assert_eq!(
        span_sum,
        result.stats.as_ref().expect("computed").dominance_tests,
        "seed tests are part of the query's reported work"
    );

    // And the answer is exactly the unseeded answer.
    let expect = skybench::verify::naive_skyline_on(&data, &[0, 1, 2]);
    assert_eq!(result.indices(), expect.as_slice());
    engine.shutdown();
}

#[test]
fn histogram_buckets_and_quantiles_are_exact() {
    let h = Histogram::new();
    h.record(Duration::ZERO);
    h.record(Duration::from_nanos(1));
    h.record(Duration::from_nanos(2));
    h.record(Duration::from_nanos(1000));

    let snap = h.snapshot();
    assert_eq!(snap.count, 4);
    assert_eq!(snap.zeros, 1);
    assert_eq!(snap.sum, Duration::from_nanos(1003));
    // Log buckets: bucket 0 covers 0..=1 ns (zeros included), bucket 1
    // covers 2..=3 ns, 1000 ns lands in 512..=1023. Counts cumulative.
    assert_eq!(snap.buckets, vec![(1, 2), (3, 3), (1023, 4)]);

    // Quantiles report the holding bucket's inclusive upper edge; exact
    // zeros rank below every bucket.
    assert_eq!(snap.quantile(0.0), Duration::ZERO);
    assert_eq!(snap.quantile(0.5), Duration::from_nanos(3));
    assert_eq!(snap.quantile(1.0), Duration::from_nanos(1023));
    assert_eq!(snap.mean(), Duration::from_nanos(1003) / 4);
}

#[test]
fn slow_query_log_applies_threshold_and_capacity() {
    let (engine, clock) = manual_engine(TelemetryConfig {
        slow_query_threshold: Duration::from_millis(1),
        slow_log_capacity: 2,
        ..TelemetryConfig::default()
    });
    let session = engine.open_session(skybench::SessionOptions::new("t"));

    // Fast query: dispatched with no clock movement → below threshold.
    let fast = session.submit(&distinct_query(0)).unwrap();
    engine.pump();
    assert!(fast.trace().is_some());

    // Three slow queries (2 ms of queue wait each) through a ring of 2:
    // the oldest is evicted.
    let mut slow_ids = Vec::new();
    for i in 1..4 {
        let t = session.submit(&distinct_query(i)).unwrap();
        clock.advance(Duration::from_millis(2));
        engine.pump();
        slow_ids.push(t.trace().unwrap().query_id);
    }

    let drained = engine.slow_queries();
    let drained_ids: Vec<u64> = drained.iter().map(|t| t.query_id).collect();
    assert_eq!(drained_ids, slow_ids[1..], "capacity 2, oldest evicted");
    assert!(drained.iter().all(|t| t.total >= Duration::from_millis(1)));
    assert!(engine.slow_queries().is_empty(), "drain empties the ring");
    engine.shutdown();
}

#[test]
fn concurrent_traces_isolate_their_dominance_counts() {
    let pool = ThreadPool::new(2);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    engine.register(
        "anti",
        generate(Distribution::Anticorrelated, 2_000, 4, 7, &pool),
    );
    engine.register(
        "indep",
        generate(Distribution::Independent, 2_000, 4, 8, &pool),
    );

    std::thread::scope(|scope| {
        for name in ["anti", "indep"] {
            let engine = &engine;
            scope.spawn(move || {
                let (result, trace) = engine
                    .explain_analyze(&SkylineQuery::new(name))
                    .expect("telemetry is enabled");
                assert_eq!(trace.dataset, name);
                assert!(!trace.cache_hit);
                // The trace's DT total is the sum of its spans' counts
                // and matches the run's own statistics: counts from the
                // concurrent query never bleed in.
                let span_sum: u64 = trace.spans.iter().map(|s| s.dominance_tests).sum();
                assert_eq!(trace.dominance_tests, span_sum);
                assert_eq!(
                    trace.dominance_tests,
                    result
                        .stats
                        .expect("computed plans carry stats")
                        .dominance_tests
                );
                assert!(trace.dominance_tests > 0);
            });
        }
    });
    engine.shutdown();
}

#[test]
fn disabled_telemetry_is_inert_but_queries_still_run() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        telemetry: TelemetryConfig {
            enabled: false,
            ..TelemetryConfig::default()
        },
        ..EngineConfig::default()
    });
    engine.register(
        "d",
        Dataset::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]]).unwrap(),
    );

    let result = engine.execute(&SkylineQuery::new("d")).unwrap();
    assert_eq!(result.indices(), &[0, 1]);
    assert!(engine.metrics().is_empty());
    assert!(engine.slow_queries().is_empty());
    assert!(matches!(
        engine.explain_analyze(&SkylineQuery::new("d")),
        Err(EngineError::TelemetryDisabled)
    ));

    let session = engine.open_session(skybench::SessionOptions::new("t"));
    let ticket = session.submit(&SkylineQuery::new("d").dims([0])).unwrap();
    assert!(ticket.wait().is_ok());
    assert!(ticket.trace().is_none(), "no traces when disabled");
    engine.shutdown();
}

#[test]
fn cold_hybrid_query_traces_every_phase() {
    let pool = ThreadPool::new(4);
    let engine = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    engine.register(
        "anti",
        generate(Distribution::Anticorrelated, 20_000, 6, 7, &pool),
    );

    let (result, trace) = engine
        .explain_analyze(&SkylineQuery::new("anti"))
        .expect("telemetry is enabled");
    assert_eq!(trace.strategy, "Hybrid", "dense anticorrelated → Hybrid");
    assert!(!trace.cache_hit);

    // The planner reported the losing candidates alongside the winner.
    assert!(trace.candidates.iter().any(|c| c.chosen));
    assert!(trace.candidates.iter().filter(|c| !c.chosen).count() > 1);

    // Both computation phases are present, took real wall time on the
    // monotonic clock, and carry their own dominance-test counts.
    for kind in [SpanKind::Plan, SpanKind::PhaseOne, SpanKind::PhaseTwo] {
        let span = trace
            .span(kind)
            .unwrap_or_else(|| panic!("{kind:?} span missing"));
        assert!(span.duration > Duration::ZERO, "{kind:?} has no duration");
    }
    assert!(trace.span(SpanKind::PhaseOne).unwrap().dominance_tests > 0);
    assert!(trace.span(SpanKind::PhaseTwo).unwrap().dominance_tests > 0);
    assert_eq!(
        trace.dominance_tests,
        result
            .stats
            .expect("computed plans carry stats")
            .dominance_tests
    );
    assert!(trace.total > Duration::ZERO);

    // The rendered line carries every span in one greppable record.
    let line = trace.render();
    assert!(line.starts_with("TRACE query="));
    assert!(line.contains("strategy=Hybrid"));
    assert!(line.contains("phase1:") && line.contains("phase2:"));
    engine.shutdown();
}
