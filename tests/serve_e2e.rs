//! End-to-end tests for the HTTP front door: a real server on an
//! ephemeral port, real sockets, and the naive O(n²·d) skyline as the
//! correctness oracle.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skybench::{
    generate, parse_json, verify, Client, Distribution, Engine, EngineConfig, Json, Priority,
    ServeConfig, SessionOptions, SkylineQuery, SkylineServer, TenantSpec, ThreadPool,
};

fn test_engine(n: usize, dist: Distribution) -> Arc<Engine> {
    let pool = ThreadPool::new(2);
    let engine = Arc::new(Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    }));
    engine.register("data", generate(dist, n, 4, 7, &pool));
    engine
}

fn two_tier_tokens() -> Vec<(String, TenantSpec)> {
    vec![
        (
            "gold-token".to_string(),
            TenantSpec {
                tenant: "gold".to_string(),
                priority: Priority::High,
                max_in_flight: None,
                qps_cap: None,
            },
        ),
        (
            "bronze-token".to_string(),
            TenantSpec {
                tenant: "bronze".to_string(),
                priority: Priority::Normal,
                max_in_flight: None,
                qps_cap: None,
            },
        ),
    ]
}

/// Pulls the `indices` array out of a response body.
fn indices_of(body: &str) -> Vec<u32> {
    let parsed = parse_json(body).expect("response is valid JSON");
    parsed
        .get("indices")
        .and_then(Json::as_arr)
        .expect("response has an indices array")
        .iter()
        .map(|v| v.as_u64().expect("index is an integer") as u32)
        .collect()
}

#[test]
fn concurrent_mixed_tenants_get_oracle_correct_results() {
    let engine = test_engine(1_200, Distribution::Independent);
    let data = engine.dataset("data").expect("registered").snapshot();
    let server = SkylineServer::start(
        Arc::clone(&engine),
        ServeConfig {
            tokens: two_tier_tokens(),
            allow_anonymous: false,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // (body, dims, max_mask) — the oracle recomputes each one.
    let cases: &[(&str, &[usize], u32)] = &[
        (r#"{"dataset":"data"}"#, &[0, 1, 2, 3], 0),
        (r#"{"dataset":"data","dims":[0,1]}"#, &[0, 1], 0),
        (
            r#"{"dataset":"data","dims":[1,3],"preference":["min","max"]}"#,
            &[1, 3],
            1 << 3,
        ),
        (
            r#"{"dataset":"data","dims":[0,2],"preference":["max","max"],"priority":"low"}"#,
            &[0, 2],
            (1 << 0) | (1 << 2),
        ),
        (
            r#"{"dataset":"data","dims":[2,3],"deadline_ms":60000}"#,
            &[2, 3],
            0,
        ),
    ];

    // Four concurrent clients — two per tenant tier — each running the
    // whole case list against the shared server.
    let data = &data;
    thread::scope(|s| {
        for worker in 0..4 {
            s.spawn(move || {
                let token = if worker % 2 == 0 {
                    "gold-token"
                } else {
                    "bronze-token"
                };
                let mut client = Client::connect_with_token(addr, token).expect("connect");
                for (body, dims, max_mask) in cases {
                    let resp = client.post_json("/v1/query", body).expect("request");
                    assert_eq!(resp.status, 200, "body {body}: {}", resp.text());
                    let mut got = indices_of(&resp.text());
                    got.sort_unstable();
                    let expected = verify::naive_skyline_on_pref(data, dims, *max_mask);
                    assert_eq!(got, expected, "case {body} diverged from the oracle");
                }
            });
        }
    });

    // Auth boundaries: no token and a bogus token are both 401 when
    // anonymous access is off.
    let mut anon = Client::connect(addr).expect("connect");
    assert_eq!(
        anon.post_json("/v1/query", r#"{"dataset":"data"}"#)
            .expect("request")
            .status,
        401
    );
    let mut bogus = Client::connect_with_token(addr, "no-such-token").expect("connect");
    assert_eq!(
        bogus
            .post_json("/v1/query", r#"{"dataset":"data"}"#)
            .expect("request")
            .status,
        401
    );

    // Error mapping over the wire: unknown dataset 404, invalid body
    // 400, dims out of range 400.
    let mut gold = Client::connect_with_token(addr, "gold-token").expect("connect");
    assert_eq!(
        gold.post_json("/v1/query", r#"{"dataset":"nope"}"#)
            .expect("request")
            .status,
        404
    );
    assert_eq!(
        gold.post_json("/v1/query", "not json")
            .expect("request")
            .status,
        400
    );
    assert_eq!(
        gold.post_json("/v1/query", r#"{"dataset":"data","dims":[99]}"#)
            .expect("request")
            .status,
        400
    );

    // The catalog listing round-trips.
    let resp = gold.get("/v1/datasets").expect("request");
    assert_eq!(resp.status, 200);
    let listing = parse_json(&resp.text()).expect("valid JSON");
    let entry = &listing.as_arr().expect("array")[0];
    assert_eq!(entry.get("name").and_then(Json::as_str), Some("data"));
    assert_eq!(entry.get("rows").and_then(Json::as_u64), Some(1_200));

    server.shutdown();

    // Admission counters balance: every admitted ticket reached a
    // terminal outcome, nothing leaked or hung.
    let stats = engine.session_stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.deadline_expired + stats.internal_errors,
        "ticket accounting must balance after drain: {stats:?}"
    );
    assert_eq!(stats.internal_errors, 0);
    assert_eq!(stats.cancelled, 0);
}

#[test]
fn oversized_skylines_stream_chunked_and_match_the_oracle() {
    // Anticorrelated data keeps most points on the skyline, so the
    // result far exceeds the tiny stream threshold below.
    let engine = test_engine(600, Distribution::Anticorrelated);
    let data = engine.dataset("data").expect("registered").snapshot();
    let server = SkylineServer::start(
        Arc::clone(&engine),
        ServeConfig {
            stream_threshold: 16,
            page_rows: 7,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let resp = client
        .post_json("/v1/query", r#"{"dataset":"data"}"#)
        .expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".to_string()),
        "a skyline past the threshold must stream"
    );
    let body = resp.text();
    let mut got = indices_of(&body);
    let total = parse_json(&body)
        .expect("valid JSON")
        .get("total")
        .and_then(Json::as_u64)
        .expect("total field");
    assert_eq!(got.len() as u64, total);
    assert!(got.len() > 16, "the test dataset must exceed the threshold");
    got.sort_unstable();
    let expected = verify::naive_skyline_on_pref(&data, &[0, 1, 2, 3], 0);
    assert_eq!(got, expected, "streamed result diverged from the oracle");

    // A small skyline on the same server stays fixed-length.
    let resp = client
        .post_json("/v1/query", r#"{"dataset":"data","limit":5}"#)
        .expect("request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("transfer-encoding"), None);
    assert_eq!(indices_of(&resp.text()).len(), 5);

    // Mid-stream disconnect: fire a streaming query and hang up without
    // reading the response. The server must shrug it off and keep
    // serving other connections.
    Client::connect(addr)
        .expect("connect")
        .post_and_abort("/v1/query", r#"{"dataset":"data"}"#)
        .expect("send");
    let mut after = Client::connect(addr).expect("connect");
    let resp = after.get("/healthz").expect("request");
    assert_eq!(resp.status, 200);
    let resp = after
        .post_json("/v1/query", r#"{"dataset":"data","dims":[0,1]}"#)
        .expect("request");
    assert_eq!(resp.status, 200, "server must survive a client hangup");

    server.shutdown();
    let stats = engine.session_stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.deadline_expired + stats.internal_errors,
        "ticket accounting must balance after drain: {stats:?}"
    );
}

#[test]
fn query_kinds_round_trip_and_unknown_fields_reject() {
    let engine = test_engine(800, Distribution::Anticorrelated);
    let data = engine.dataset("data").expect("registered").snapshot();
    let server = SkylineServer::start(Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // A skyband query returns both indices and the parallel dominator
    // counts, and both must match the naive oracle.
    let resp = client
        .post_json(
            "/v1/query",
            r#"{"dataset":"data","kind":{"skyband":{"k":3}},"dims":[0,1]}"#,
        )
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    let parsed = parse_json(&body).expect("valid JSON");
    let counts: Vec<u32> = parsed
        .get("counts")
        .and_then(Json::as_arr)
        .expect("skyband responses carry a counts array")
        .iter()
        .map(|v| v.as_u64().expect("count is an integer") as u32)
        .collect();
    let indices = indices_of(&body);
    assert_eq!(indices.len(), counts.len());
    let mut got: Vec<(u32, u32)> = indices
        .iter()
        .copied()
        .zip(counts.iter().copied())
        .collect();
    got.sort_unstable();
    let expected = verify::naive_skyband_on_pref(&data, &[0, 1], 0, 3);
    assert_eq!(got, expected, "skyband diverged from the oracle");

    // Top-k dominating over the wire: ranked ids plus dominated counts.
    let resp = client
        .post_json(
            "/v1/query",
            r#"{"dataset":"data","kind":{"top_k_dominating":{"k":5}}}"#,
        )
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    let parsed = parse_json(&body).expect("valid JSON");
    let counts: Vec<u32> = parsed
        .get("counts")
        .and_then(Json::as_arr)
        .expect("top-k responses carry a counts array")
        .iter()
        .map(|v| v.as_u64().expect("count is an integer") as u32)
        .collect();
    let got: Vec<(u32, u32)> = indices_of(&body).into_iter().zip(counts).collect();
    let expected = verify::naive_top_k_dominating(&data, &[0, 1, 2, 3], 0, 5);
    assert_eq!(got, expected, "top-k dominating diverged from the oracle");

    // The explicit skyline spelling matches the default, with no counts.
    let resp = client
        .post_json("/v1/query", r#"{"dataset":"data","kind":"skyline"}"#)
        .expect("request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let body = resp.text();
    assert!(
        parse_json(&body)
            .expect("valid JSON")
            .get("counts")
            .is_none(),
        "skyline responses must not carry counts"
    );
    let mut got = indices_of(&body);
    got.sort_unstable();
    assert_eq!(got, verify::naive_skyline_on_pref(&data, &[0, 1, 2, 3], 0));

    // Malformed kinds are 400s that name the accepted shapes.
    for bad in [
        r#"{"dataset":"data","kind":"skybandd"}"#,
        r#"{"dataset":"data","kind":{"skyband":{"k":3},"extra":1}}"#,
        r#"{"dataset":"data","kind":{"skyband":{"kk":3}}}"#,
        r#"{"dataset":"data","kind":{"skyband":{"k":-1}}}"#,
    ] {
        let resp = client.post_json("/v1/query", bad).expect("request");
        assert_eq!(resp.status, 400, "body {bad}: {}", resp.text());
        assert!(
            resp.text().contains("'kind' must be"),
            "error must describe the accepted kind shapes: {}",
            resp.text()
        );
    }

    // An unknown top-level field is a 400 naming the offender, so typos
    // like "pref" fail loudly instead of silently running a different
    // query.
    let resp = client
        .post_json(
            "/v1/query",
            r#"{"dataset":"data","pref":["min","max"],"dims":[0,1]}"#,
        )
        .expect("request");
    assert_eq!(resp.status, 400, "{}", resp.text());
    let body = resp.text();
    assert!(
        body.contains("unknown field 'pref'"),
        "error must name the rejected field: {body}"
    );
    assert!(
        body.contains("preference"),
        "error must list the accepted fields: {body}"
    );

    // A non-object body gets the same treatment.
    let resp = client
        .post_json("/v1/query", r#"[1,2,3]"#)
        .expect("request");
    assert_eq!(resp.status, 400, "{}", resp.text());

    server.shutdown();
}

#[test]
fn version_pins_conflict_after_mutation() {
    let engine = test_engine(300, Distribution::Independent);
    let server = SkylineServer::start(Arc::clone(&engine), ServeConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    let version = parse_json(&client.get("/v1/datasets").expect("request").text())
        .expect("valid JSON")
        .as_arr()
        .expect("array")[0]
        .get("version")
        .and_then(Json::as_u64)
        .expect("version field");

    // Pinning the live version works.
    let body = format!("{{\"dataset\":\"data\",\"pin_version\":{version}}}");
    assert_eq!(
        client
            .post_json("/v1/query", &body)
            .expect("request")
            .status,
        200
    );

    // A mutation moves the catalog past the pin → 409 over the wire.
    engine
        .insert("data", &[vec![0.0, 0.0, 0.0, 0.0]])
        .expect("insert");
    assert_eq!(
        client
            .post_json("/v1/query", &body)
            .expect("request")
            .status,
        409,
        "a stale pin must map to 409"
    );

    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_stops_new_work() {
    let engine = test_engine(1_000, Distribution::Anticorrelated);
    let server = Arc::new(
        SkylineServer::start(
            Arc::clone(&engine),
            ServeConfig {
                tokens: two_tier_tokens(),
                allow_anonymous: true,
                ..ServeConfig::default()
            },
        )
        .expect("bind"),
    );
    let addr = server.local_addr();

    // Background clients hammer the server while the main thread pulls
    // the plug. Every response must be a clean terminal outcome: 200,
    // a drain 503, or a socket error once the listener is gone — never
    // a hang (the scope join would deadlock and time the test out).
    let outcomes = thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|worker| {
                s.spawn(move || {
                    let token = if worker == 0 {
                        "gold-token"
                    } else {
                        "bronze-token"
                    };
                    let mut done = (0u32, 0u32, 0u32); // ok, unavailable, io
                    for i in 0..40 {
                        let mut client = match Client::connect_with_token(addr, token) {
                            Ok(c) => c,
                            Err(_) => {
                                done.2 += 1;
                                break;
                            }
                        };
                        let body = if i % 2 == 0 {
                            r#"{"dataset":"data"}"#
                        } else {
                            r#"{"dataset":"data","dims":[0,1],"priority":"low"}"#
                        };
                        match client.post_json("/v1/query", body) {
                            Ok(resp) if resp.status == 200 => done.0 += 1,
                            Ok(resp) if resp.status == 503 => done.1 += 1,
                            Ok(resp) => panic!("unexpected status {}", resp.status),
                            Err(_) => done.2 += 1,
                        }
                    }
                    done
                })
            })
            .collect();
        // Let the workers get some requests in flight, then drain.
        thread::sleep(Duration::from_millis(100));
        server.shutdown();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    let ok: u32 = outcomes.iter().map(|o| o.0).sum();
    assert!(ok > 0, "some requests must complete before the drain");
    assert_eq!(
        server.active_connections(),
        0,
        "drain must close every connection"
    );

    // Engine shut down behind the drain: direct submission is refused…
    let session = engine.open_session(SessionOptions::new("late"));
    assert!(matches!(
        session.submit(&SkylineQuery::new("data")),
        Err(skybench::EngineError::Rejected(
            skybench::RejectReason::Shutdown
        ))
    ));

    // …and every admitted ticket reached a terminal outcome (a hung
    // waiter would also have deadlocked the drain above).
    let stats = engine.session_stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.deadline_expired + stats.internal_errors,
        "ticket accounting must balance after drain: {stats:?}"
    );

    // Shutdown is idempotent.
    server.shutdown();
}
