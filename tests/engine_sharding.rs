//! Engine-level tests of the sharded execution tier: the planner must
//! route large queries on shard-registered datasets through
//! `Strategy::Sharded`, the per-shard scans plus witness-pruned merge
//! must agree with brute force across partitioners and preferences,
//! traces must carry per-shard spans, and the adaptive (debt-driven)
//! per-shard compaction must fire from observed tombstone-scan cost.

use skybench::prelude::*;
use skybench::{generate, verify, PartitionerKind, PlannerConfig, SpanKind, Strategy};

/// A planner that sends everything it can at the sharded tier.
fn sharded_planner() -> PlannerConfig {
    PlannerConfig {
        tiny_n: 64,
        small_n: 256,
        sharded_min_n: 512,
        ..PlannerConfig::default()
    }
}

#[test]
fn sharded_strategy_matches_naive_across_partitioners() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Anticorrelated, 6_000, 4, 11, &gen_pool);

    for kind in PartitionerKind::ALL {
        let engine = Engine::with_config(EngineConfig {
            threads: 2,
            planner: sharded_planner(),
            ..EngineConfig::default()
        });
        engine.register_sharded("s", data.clone(), 4, kind);

        let queries = [
            (SkylineQuery::new("s"), (0..4).collect::<Vec<_>>(), 0u32),
            (SkylineQuery::new("s").dims([0, 2, 3]), vec![0, 2, 3], 0),
            (
                SkylineQuery::new("s")
                    .dims([1, 3])
                    .preference([Preference::Max, Preference::Min]),
                vec![1, 3],
                0b0010,
            ),
        ];
        for (query, dims, max_mask) in queries {
            let cold = engine.execute(&query).unwrap();
            assert_eq!(
                cold.plan.strategy,
                Strategy::Sharded {
                    k: 4,
                    partitioner: kind
                },
                "{kind:?} {dims:?}"
            );
            let merge = cold
                .shard_merge
                .as_ref()
                .expect("sharded runs report merge accounting");
            assert_eq!(merge.survivors, cold.total_skyline_size());
            assert!(merge.candidates >= merge.survivors);
            let expect = verify::naive_skyline_on_pref(&data, &dims, max_mask);
            assert_eq!(cold.indices(), expect.as_slice(), "{kind:?} {dims:?}");

            // The same query again is a cache hit, not a re-merge.
            let warm = engine.execute(&query).unwrap();
            assert!(warm.cache_hit);
            assert!(warm.shard_merge.is_none());
        }
    }
}

#[test]
fn sharded_trace_carries_per_shard_spans() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Correlated, 4_000, 3, 5, &gen_pool);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        planner: sharded_planner(),
        ..EngineConfig::default()
    });
    engine.register_sharded("s", data, 4, PartitionerKind::Grid);

    let (result, trace) = engine
        .explain_analyze(&SkylineQuery::new("s"))
        .expect("telemetry is on by default");
    assert!(matches!(
        result.plan.strategy,
        Strategy::Sharded { k: 4, .. }
    ));

    let of = |kind: SpanKind| -> Vec<_> { trace.spans.iter().filter(|s| s.kind == kind).collect() };
    assert_eq!(of(SpanKind::ShardScatter).len(), 1);
    assert_eq!(of(SpanKind::ShardMerge).len(), 1);
    let locals = of(SpanKind::ShardLocal);
    assert_eq!(locals.len(), 4, "one local span per shard");
    let mut shards: Vec<u32> = locals.iter().map(|s| s.shard.expect("tagged")).collect();
    shards.sort_unstable();
    assert_eq!(shards, vec![0, 1, 2, 3]);
    // Per-shard dominance-test counts roll up into the trace total.
    let local_dts: u64 = locals.iter().map(|s| s.dominance_tests).sum();
    assert!(local_dts > 0, "non-trivial shards do dominance work");
    assert!(trace.dominance_tests >= local_dts);
    // Whole-query spans stay untagged.
    assert!(of(SpanKind::ShardScatter)[0].shard.is_none());
    assert!(of(SpanKind::ShardMerge)[0].shard.is_none());
    // And the rendering distinguishes shards.
    let rendered = trace.render();
    assert!(rendered.contains("shard.local[0]"), "{rendered}");
    assert!(rendered.contains("shard.merge"), "{rendered}");
}

#[test]
fn sharded_datasets_stay_correct_under_mutation() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 3_000, 3, 23, &gen_pool);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        planner: sharded_planner(),
        ..EngineConfig::default()
    });
    engine.register_sharded("s", data, 3, PartitionerKind::Angular);

    // Mutate: a few deletes from the first skyline, a few inserts.
    let cold = engine.execute(&SkylineQuery::new("s")).unwrap();
    let victims: Vec<u32> = cold.indices().iter().copied().take(3).collect();
    engine.delete("s", &victims).unwrap();
    engine
        .insert("s", &[vec![0.001, 0.9, 0.9], vec![0.5, 0.001, 0.9]])
        .unwrap();

    let entry = engine.dataset("s").expect("registered");
    let store = entry.sharded().expect("shard store follows mutations");
    assert_eq!(store.live_len(), entry.live_len());

    let fresh = engine
        .execute(&SkylineQuery::new("s").dims([0, 1]))
        .unwrap();
    let expect: Vec<u32> = verify::naive_skyline_on_pref(&entry.snapshot(), &[0, 1], 0)
        .iter()
        .map(|&k| entry.live_ids()[k as usize])
        .collect();
    assert_eq!(fresh.indices(), expect.as_slice());
}

/// The adaptive trigger: tombstones below the dataset's compaction
/// threshold still get compacted per shard once queries have paid for
/// them — scan debt observed by the sharded executor crossing
/// `shard_debt_factor × live` makes the next touching batch compact.
#[test]
fn observed_scan_debt_compacts_shards() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 2_000, 3, 7, &gen_pool);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        cache_bytes: 0,        // every query re-executes (and observes debt)
        compact_fraction: 2.0, // the fraction trigger never fires
        shard_debt_factor: Some(0.5),
        planner: sharded_planner(),
        ..EngineConfig::default()
    });
    engine.register_sharded("s", data, 2, PartitionerKind::Random);

    // Tombstone a visible fraction (20%) — far below any dead-fraction
    // threshold, so only the debt trigger can ever clean these up.
    let victims: Vec<u32> = (0..2_000).step_by(5).collect();
    engine.delete("s", &victims).unwrap();
    let entry = engine.dataset("s").expect("registered");
    let store = entry.sharded().expect("sharded");
    let dead_before: usize = store.stats().iter().map(|s| s.dead).sum();
    assert_eq!(dead_before, victims.len());

    // Each uncached sharded query skips every tombstone once: debt
    // grows by the shard's dead count per scan.
    engine.execute(&SkylineQuery::new("s")).unwrap();
    let after_one: Vec<u64> = (0..2).map(|i| store.scan_debt(i)).collect();
    for (i, &debt) in after_one.iter().enumerate() {
        assert_eq!(debt, store.stats()[i].dead as u64, "shard {i}");
    }
    let crossed = |store: &skybench::ShardedStore| {
        store
            .stats()
            .iter()
            .enumerate()
            .all(|(i, s)| s.dead == 0 || store.scan_debt(i) as f32 >= 0.5 * s.live as f32)
    };
    for _ in 0..64 {
        if crossed(store) {
            break;
        }
        engine.execute(&SkylineQuery::new("s")).unwrap();
    }
    assert!(crossed(store), "debt accumulates linearly in queries");

    // Debt now exceeds 0.5 × live everywhere a tombstone lives; the
    // next batch compacts exactly the shards it touches.
    let report = engine
        .insert("s", &[vec![0.5, 0.5, 0.5], vec![0.1, 0.9, 0.2]])
        .unwrap();
    let entry = engine.dataset("s").expect("registered");
    let store = entry.sharded().expect("sharded");
    let touched: Vec<usize> = report
        .inserted_ids
        .iter()
        .zip([[0.5f32, 0.5, 0.5], [0.1, 0.9, 0.2]].iter())
        .map(|(&id, row)| store.shard_of(id, row))
        .collect();
    let stats = store.stats();
    for &i in &touched {
        assert_eq!(
            stats[i].dead, 0,
            "debt-compacted shard {i} holds no tombstones"
        );
        assert_eq!(store.scan_debt(i), 0, "compaction resets shard {i}'s debt");
    }

    // Results stay correct through per-shard compaction.
    let fresh = engine.execute(&SkylineQuery::new("s")).unwrap();
    let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
        .iter()
        .map(|&k| entry.live_ids()[k as usize])
        .collect();
    assert_eq!(fresh.indices(), expect.as_slice());
}
