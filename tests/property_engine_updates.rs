//! Property-based testing of incremental skyline maintenance: random
//! interleavings of inserts, deletes, and queries against a mutable
//! engine dataset must always agree with `verify::naive_skyline_on_pref`
//! over the materialized current rows — across subspaces, Min/Max
//! preferences, cache patching (eager and query-time delta), and
//! compaction.
//!
//! The model mirrors the engine's stable-id contract: every live row is
//! tracked as `(stable id, coordinates)`; a compacting batch renumbers
//! the model exactly as the catalog does (survivors in id order, then
//! the batch's inserts).

use proptest::prelude::*;
use skybench::prelude::*;
use skybench::{verify, Strategy};

/// Deterministic mutation/query driver (splitmix-ish), seeded per case.
struct Driver(u64);

impl Driver {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Small integer alphabet: forces ties, duplicates, and coincident
    /// points — the hard cases of skyline maintenance.
    fn coord(&mut self) -> f32 {
        (self.next() % 5) as f32
    }
}

/// The shadow model: live rows as (stable id, coordinates), always
/// ascending in id (ids are assigned monotonically and compaction
/// preserves id order) — mirroring the catalog's live list.
struct Model {
    rows: Vec<(u32, Vec<f32>)>,
}

impl Model {
    fn materialize(&self) -> Dataset {
        let d = self.rows.first().map(|(_, r)| r.len()).unwrap_or(1);
        let flat: Vec<f32> = self
            .rows
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        Dataset::from_flat(flat, d).expect("model rows are valid")
    }

    /// Applies the same renumbering a catalog compaction performs:
    /// survivors (already in id order) become 0..n.
    fn renumber(&mut self) {
        for (k, (id, _)) in self.rows.iter_mut().enumerate() {
            *id = k as u32;
        }
    }
}

/// One full scenario: build a dataset, interleave mutations and
/// queries, check every query against the naive reference.
fn check_scenario(d: usize, n0: usize, ops: usize, seed: u64, compact_fraction: f32) {
    let mut drv = Driver(seed);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        compact_fraction,
        ..EngineConfig::default()
    });

    let mut model = Model {
        rows: (0..n0 as u32)
            .map(|id| (id, (0..d).map(|_| drv.coord()).collect::<Vec<f32>>()))
            .collect(),
    };
    engine.register("m", model.materialize());

    let run_query = |model: &Model, drv: &mut Driver| {
        // Random non-empty subspace with random preferences.
        let dims: Vec<usize> = (0..d).filter(|_| drv.next() % 2 == 0).collect();
        let dims = if dims.is_empty() {
            vec![drv.below(d)]
        } else {
            dims
        };
        let prefs: Vec<Preference> = dims
            .iter()
            .map(|_| {
                if drv.next() % 2 == 0 {
                    Preference::Min
                } else {
                    Preference::Max
                }
            })
            .collect();
        let max_mask = dims
            .iter()
            .zip(&prefs)
            .filter(|(_, p)| **p == Preference::Max)
            .fold(0u32, |m, (dim, _)| m | (1 << dim));

        let got = engine
            .execute(
                &SkylineQuery::new("m")
                    .dims(dims.iter().copied())
                    .preference(prefs.iter().copied()),
            )
            .expect("valid query");
        // Reference: naive skyline over the materialized live rows,
        // mapped back to stable ids through the model.
        let expect: Vec<u32> = verify::naive_skyline_on_pref(&model.materialize(), &dims, max_mask)
            .iter()
            .map(|&k| model.rows[k as usize].0)
            .collect();
        assert_eq!(
            got.indices(),
            expect.as_slice(),
            "dims {:?} mask {:#b} strategy {:?} (n = {})",
            dims,
            max_mask,
            got.plan.strategy,
            model.rows.len()
        );
        // Engine and model agree on the id space too.
        let entry = engine.dataset("m").expect("registered");
        assert_eq!(entry.live_len(), model.rows.len());
    };

    // Seed the cache so the first mutations exercise patching.
    run_query(&model, &mut drv);

    for _ in 0..ops {
        match drv.next() % 4 {
            // Insert a small batch.
            0 | 1 => {
                let k = 1 + drv.below(3);
                let rows: Vec<Vec<f32>> = (0..k)
                    .map(|_| (0..d).map(|_| drv.coord()).collect())
                    .collect();
                let report = engine.insert("m", &rows).expect("valid insert");
                assert_eq!(report.inserted_ids.len(), k);
                for (row, &id) in rows.iter().zip(&report.inserted_ids) {
                    model.rows.push((id, row.clone()));
                }
                if report.compacted {
                    // Inserts land at the tail; survivors renumber in
                    // id order — exactly what `renumber` does since we
                    // just pushed the inserts last.
                    model.renumber();
                }
            }
            // Delete a small batch of random live rows.
            2 => {
                if model.rows.is_empty() {
                    continue;
                }
                let k = (1 + drv.below(2)).min(model.rows.len());
                let mut victims: Vec<u32> = Vec::new();
                while victims.len() < k {
                    let v = model.rows[drv.below(model.rows.len())].0;
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                let report = engine.delete("m", &victims).expect("live victims");
                model.rows.retain(|(id, _)| !victims.contains(id));
                if report.compacted {
                    model.renumber();
                }
            }
            // Query.
            _ => {
                run_query(&model, &mut drv);
            }
        }
    }
    // Final checks: one more random query plus the full space.
    run_query(&model, &mut drv);
    let entry = engine.dataset("m").expect("registered");
    let full = engine.execute(&SkylineQuery::new("m")).expect("valid");
    let expect: Vec<u32> = verify::naive_skyline(&model.materialize())
        .iter()
        .map(|&k| model.rows[k as usize].0)
        .collect();
    assert_eq!(full.indices(), expect.as_slice(), "full-space final state");
    assert_eq!(entry.live_len(), model.rows.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Mutation interleavings with the default compaction threshold.
    #[test]
    fn incremental_maintenance_matches_naive(
        d in 1usize..=4,
        n0 in 0usize..=40,
        ops in 8usize..=28,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(d, n0, ops, seed, 0.25);
    }

    // A hair-trigger compaction threshold: every delete batch compacts,
    // exercising renumbering and cache invalidation constantly.
    #[test]
    fn maintenance_survives_constant_compaction(
        d in 1usize..=3,
        n0 in 1usize..=25,
        ops in 6usize..=20,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(d, n0, ops, seed, 0.0);
    }

    // Compaction disabled: tombstones and segments accumulate without
    // bound, delta plans stay available the whole run.
    #[test]
    fn maintenance_survives_unbounded_tombstones(
        d in 1usize..=3,
        n0 in 1usize..=25,
        ops in 6usize..=20,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(d, n0, ops, seed, 2.0);
    }
}

/// The cached path must also serve *patched* results: repeat one query
/// across a mutation stream and require cache hits after eagerly
/// patched insert batches.
#[test]
fn eager_patching_keeps_the_cache_warm() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let mut drv = Driver(0xfeed);
    let rows: Vec<Vec<f32>> = (0..64)
        .map(|_| (0..3).map(|_| drv.coord()).collect())
        .collect();
    engine.register("m", Dataset::from_rows(&rows).unwrap());
    let q = SkylineQuery::new("m");
    engine.execute(&q).expect("valid");
    let mut patched_hits = 0;
    for _ in 0..20 {
        let row: Vec<f32> = (0..3).map(|_| drv.coord()).collect();
        engine.insert("m", &[row]).expect("valid");
        let r = engine.execute(&q).expect("valid");
        if r.cache_hit {
            patched_hits += 1;
        }
        // Whatever the path, correctness holds.
        let entry = engine.dataset("m").expect("registered");
        let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
            .iter()
            .map(|&k| entry.live_ids()[k as usize])
            .collect();
        assert_eq!(r.indices(), expect.as_slice());
    }
    assert_eq!(
        patched_hits, 20,
        "insert-only batches must keep the cached result servable"
    );
    assert!(engine.cache_stats().patches >= 20);
}

/// Deferred delete patching: a delete leaves the prior entry in place
/// and the next query resolves through a Delta plan, not a recompute.
#[test]
fn deletes_resolve_through_delta_plans() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        compact_fraction: 2.0, // never compact: keep the delta path pure
        ..EngineConfig::default()
    });
    let mut drv = Driver(0xdead);
    let rows: Vec<Vec<f32>> = (0..4_000)
        .map(|_| (0..3).map(|_| (drv.next() % 1_000) as f32).collect())
        .collect();
    engine.register("m", Dataset::from_rows(&rows).unwrap());
    let q = SkylineQuery::new("m");
    let cold = engine.execute(&q).expect("valid");
    let victim = cold.indices()[0];
    engine.delete("m", &[victim]).expect("live victim");
    let after = engine.execute(&q).expect("valid");
    assert!(matches!(after.plan.strategy, Strategy::Delta { .. }));
    let entry = engine.dataset("m").expect("registered");
    let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
        .iter()
        .map(|&k| entry.live_ids()[k as usize])
        .collect();
    assert_eq!(after.indices(), expect.as_slice());
}
