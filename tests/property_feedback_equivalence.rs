//! Property: the feedback loop may change *plans*, never *results*.
//!
//! Two engines replay identical random mutate/query interleavings: one
//! with feedback disabled (the static planner), one with feedback
//! enabled at its most aggressive — every bucket fits from a single
//! observation, no hysteresis band, a refit due on every clock tick —
//! while the driver injects skewed synthetic observations and advances
//! a [`ManualClock`] between operations, forcing the fitted thresholds
//! (and therefore the plan choices) to churn as hard as they can.
//! Whatever the planner ends up choosing, every query's result must be
//! identical across the two engines.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use skybench::prelude::*;
use skybench::{Clock, FeedbackConfig, ManualClock, Observation, PlanKind, Strategy};

/// Deterministic driver (splitmix-ish), seeded per case.
struct Driver(u64);

impl Driver {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Small integer alphabet: ties and coincident points on purpose.
    fn coord(&mut self) -> f32 {
        (self.next() % 5) as f32
    }

    /// A synthetic observation skewing some strategy's cost, pushing
    /// the fitted thresholds around between refits.
    fn skewed_observation(&mut self) -> Observation {
        let kind = match self.next() % 6 {
            0 => PlanKind::Algo(Algorithm::Bnl),
            1 => PlanKind::Algo(Algorithm::Sfs),
            2 => PlanKind::Algo(Algorithm::QFlow),
            3 => PlanKind::Algo(Algorithm::Hybrid),
            4 => PlanKind::Delta,
            _ => PlanKind::MinScan,
        };
        Observation {
            kind,
            n: 1 << (4 + self.below(14)),
            d: 1 + self.below(5),
            max_mask: (self.next() % 8) as u32,
            sample_skyline_frac: Some((self.next() % 100) as f32 / 100.0),
            alpha: matches!(
                kind,
                PlanKind::Algo(Algorithm::QFlow) | PlanKind::Algo(Algorithm::Hybrid)
            )
            .then(|| 1 << (6 + self.below(8))),
            runtime: Duration::from_nanos(1 + self.next() % 10_000_000),
            queue_wait: Duration::ZERO,
        }
    }
}

/// One scenario: identical operation streams against a static engine
/// and a maximally adaptive one; every query must agree.
fn check_equivalence(d: usize, n0: usize, ops: usize, seed: u64) {
    let mut drv = Driver(seed);
    let base = EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    };
    let off = Engine::with_config(base.clone());
    let clock = ManualClock::shared();
    let on = Engine::with_clock(
        EngineConfig {
            feedback: FeedbackConfig {
                enabled: true,
                refit_interval: Duration::from_millis(1),
                min_observations: 1,
                hysteresis: 0.0,
                // Maximum churn: explore on every refit. Results must
                // still match the feedback-off engine exactly.
                explore_every: 1,
            },
            ..base
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    );

    let rows: Vec<Vec<f32>> = (0..n0)
        .map(|_| (0..d).map(|_| drv.coord()).collect())
        .collect();
    off.register("m", Dataset::from_rows(&rows).unwrap());
    on.register("m", Dataset::from_rows(&rows).unwrap());

    let mut diverged_plans = 0usize;
    for op in 0..ops {
        // Skew the adaptive engine's cost model and let time pass, so
        // a refit is due practically every operation.
        let fb = on.feedback().expect("enabled");
        for _ in 0..1 + drv.below(3) {
            fb.record(drv.skewed_observation());
        }
        clock.advance(Duration::from_millis(1 + drv.below(5) as u64));

        match drv.next() % 4 {
            0 | 1 => {
                let k = 1 + drv.below(3);
                let batch: Vec<Vec<f32>> = (0..k)
                    .map(|_| (0..d).map(|_| drv.coord()).collect())
                    .collect();
                let a = off.insert("m", &batch).expect("valid insert");
                let b = on.insert("m", &batch).expect("valid insert");
                prop_assert_eq!(&a.inserted_ids, &b.inserted_ids, "op {}", op);
            }
            2 => {
                let entry = off.dataset("m").expect("registered");
                if entry.live_len() == 0 {
                    continue;
                }
                let live = entry.live_ids();
                let victim = live[drv.below(live.len())];
                off.delete("m", &[victim]).expect("live victim");
                on.delete("m", &[victim]).expect("live victim");
            }
            _ => {
                let dims: Vec<usize> = (0..d).filter(|_| drv.next() % 2 == 0).collect();
                let dims = if dims.is_empty() {
                    vec![drv.below(d)]
                } else {
                    dims
                };
                let prefs: Vec<Preference> = dims
                    .iter()
                    .map(|_| {
                        if drv.next() % 2 == 0 {
                            Preference::Min
                        } else {
                            Preference::Max
                        }
                    })
                    .collect();
                let q = SkylineQuery::new("m")
                    .dims(dims.iter().copied())
                    .preference(prefs.iter().copied());
                let a = off.execute(&q).expect("valid query");
                let b = on.execute(&q).expect("valid query");
                prop_assert_eq!(
                    a.indices(),
                    b.indices(),
                    "op {}: dims {:?} plans {:?} / {:?}",
                    op,
                    dims,
                    a.plan.strategy,
                    b.plan.strategy
                );
                if plan_kind(&a.plan.strategy) != plan_kind(&b.plan.strategy) {
                    diverged_plans += 1;
                }
            }
        }
    }
    // Final full-space check, and the adaptive engine really adapted.
    let a = off.execute(&SkylineQuery::new("m")).expect("valid");
    let b = on.execute(&SkylineQuery::new("m")).expect("valid");
    prop_assert_eq!(a.indices(), b.indices(), "final full-space state");
    let stats = on.feedback_stats();
    prop_assert!(stats.refits > 0, "the loop must actually have refitted");
    // Plans are *allowed* to diverge (that is the loop working); the
    // counter only documents it. Results never may.
    let _ = diverged_plans;
}

fn plan_kind(s: &Strategy) -> PlanKind {
    PlanKind::from(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn feedback_changes_plans_never_results(
        d in 1usize..=4,
        n0 in 0usize..=40,
        ops in 8usize..=28,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_equivalence(d, n0, ops, seed);
    }
}
