//! Facade API behaviour and the real-data stand-ins.

use std::sync::Arc;

use skybench::prelude::*;
use skybench::RealDataset;

#[test]
fn builder_defaults_and_overrides() {
    let data = Dataset::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0], vec![2.0, 2.0]]).unwrap();
    let expect: &[u32] = &[0, 1];
    assert_eq!(skyline(&data).indices(), expect);
    for algo in Algorithm::ALL {
        let sky = SkylineBuilder::new()
            .algorithm(algo)
            .threads(1)
            .alpha(2)
            .pivot(PivotStrategy::Balanced)
            .sort_key(SortKey::Entropy)
            .prefilter_beta(2)
            .seed(7)
            .compute(&data);
        assert_eq!(sky.indices(), expect, "{algo}");
    }
}

#[test]
fn stats_are_meaningful() {
    let pool = Arc::new(ThreadPool::new(2));
    let data = skybench::generate(Distribution::Independent, 20_000, 6, 3, &pool);
    let (sky, stats) = SkylineBuilder::new()
        .pool(Arc::clone(&pool))
        .compute_with_stats(&data);
    assert_eq!(stats.skyline_size, sky.len());
    assert!(stats.dominance_tests > 0);
    assert!(stats.total >= stats.phase1);
    assert!(stats.parallel_fraction() >= 0.0 && stats.parallel_fraction() <= 1.0);
}

#[test]
fn preferences_flip_the_problem() {
    let raw = Dataset::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
    // Minimising: only (1,1). Maximising both: only (3,3).
    assert_eq!(skyline(&raw).indices(), &[0]);
    let maxed = raw
        .with_preferences(&[Preference::Max, Preference::Max])
        .unwrap();
    assert_eq!(skyline(&maxed).indices(), &[2]);
}

#[test]
fn nba_standin_matches_paper_shape() {
    let pool = Arc::new(ThreadPool::new(2));
    let data = RealDataset::Nba.standin(&pool);
    assert_eq!(data.len(), RealDataset::Nba.cardinality());
    assert_eq!(data.dims(), RealDataset::Nba.dims());
    let sky = SkylineBuilder::new().pool(Arc::clone(&pool)).compute(&data);
    // Paper (genuine NBA): 1,796 points = 10.40 %. The stand-in is
    // calibrated to land in the same regime.
    let pct = 100.0 * sky.len() as f64 / data.len() as f64;
    assert!(
        (5.0..=20.0).contains(&pct),
        "NBA stand-in skyline {pct:.2}% out of calibrated band"
    );
    // All algorithms agree on real-shaped (duplicate-heavy) data.
    let expect = sky.indices();
    for algo in [Algorithm::BSkyTree, Algorithm::PSkyline, Algorithm::QFlow] {
        let got = SkylineBuilder::new()
            .algorithm(algo)
            .pool(Arc::clone(&pool))
            .compute(&data);
        assert_eq!(got.indices(), expect, "{algo}");
    }
}

#[test]
fn house_standin_agreement() {
    let pool = Arc::new(ThreadPool::new(2));
    let data = RealDataset::House.standin(&pool);
    assert_eq!(data.len(), RealDataset::House.cardinality());
    let hybrid = SkylineBuilder::new().pool(Arc::clone(&pool)).compute(&data);
    let qflow = SkylineBuilder::new()
        .algorithm(Algorithm::QFlow)
        .pool(Arc::clone(&pool))
        .compute(&data);
    assert_eq!(hybrid.indices(), qflow.indices());
    let pct = 100.0 * hybrid.len() as f64 / data.len() as f64;
    assert!(
        (1.0..=15.0).contains(&pct),
        "HOUSE stand-in skyline {pct:.2}% out of calibrated band"
    );
}
