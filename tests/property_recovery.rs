//! Property-based crash testing of the durability subsystem: for
//! random mutation interleavings, a deterministic fault injector kills
//! the durable engine at **every** write ordinal in turn, and the
//! state recovered from the surviving bytes must equal the
//! acknowledged prefix of mutations — live ids, row values, and the
//! skyline against `verify::naive_skyline` — with compaction enabled,
//! so replay reproduces the catalog's renumbering decisions too.
//!
//! The acknowledged prefix is tracked by a *shadow engine*: an
//! identically configured non-durable engine fed exactly the batches
//! the durable one acknowledged. Determinism of the mutation path
//! (same config, same state, same batch ⇒ same renumbering) is what
//! makes this comparison exact; that determinism is itself covered by
//! the engine's update property suite.

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;
use skybench::persist::{FaultInjector, FaultPlan, MemIo, WalIo};
use skybench::prelude::*;
use skybench::{splitmix64, verify, EngineError};

const DIR: &str = "/crash";

fn cfg() -> EngineConfig {
    EngineConfig {
        threads: 2,
        // The default fraction: small delete batches compact eagerly,
        // so replay has to reproduce renumbering, not just appends.
        ..EngineConfig::default()
    }
}

/// One scripted mutation step, derived deterministically from the
/// case seed and the shadow's current live set.
fn step(seed: &mut u64, d: usize, live: &[u32]) -> (Vec<Vec<f32>>, Vec<u32>) {
    let n_ins = (splitmix64(seed) % 4) as usize;
    let inserts: Vec<Vec<f32>> = (0..n_ins)
        .map(|_| {
            (0..d)
                // A tiny alphabet forces ties, duplicates, and
                // coincident points.
                .map(|_| (splitmix64(seed) % 5) as f32)
                .collect()
        })
        .collect();
    let n_del = if live.is_empty() {
        0
    } else {
        (splitmix64(seed) % 3).min(live.len() as u64 - 1) as usize
    };
    let mut deletes: Vec<u32> = (0..n_del)
        .map(|_| live[(splitmix64(seed) % live.len() as u64) as usize])
        .collect();
    deletes.sort_unstable();
    deletes.dedup();
    (inserts, deletes)
}

/// Drives the scripted workload against a durable engine over `io`,
/// mirroring every acknowledged batch into a fresh shadow engine.
/// Returns the shadow (`None` when even registration never
/// committed) — the ground truth for what recovery must rebuild.
fn drive(io: Arc<dyn WalIo>, mut seed: u64, n0: usize, d: usize, ops: usize) -> Option<Engine> {
    let (engine, _) = Engine::open_durable_with_io(DIR, cfg(), io).expect("open on empty store");
    let base: Vec<Vec<f32>> = (0..n0)
        .map(|_| (0..d).map(|_| (splitmix64(&mut seed) % 5) as f32).collect())
        .collect();
    let data = Dataset::from_rows(&base).unwrap();
    let shadow = Engine::with_config(cfg());
    if engine.try_register("d", data.clone()).is_err() {
        return None;
    }
    shadow.register("d", data);
    for _ in 0..ops {
        let live = shadow.dataset("d").unwrap().live_ids().as_slice().to_vec();
        let (inserts, deletes) = step(&mut seed, d, &live);
        match engine.update_batch("d", &inserts, &deletes) {
            Ok(_) => {
                shadow
                    .update_batch("d", &inserts, &deletes)
                    .expect("the shadow applies what the durable engine acknowledged");
            }
            Err(EngineError::Persist(_)) => break,
            Err(e) => panic!("unexpected mutation error: {e}"),
        }
    }
    Some(shadow)
}

/// Asserts the recovered engine's dataset equals the shadow's, and
/// that its skyline matches the naive reference over the live rows.
fn assert_matches_shadow(recovered: &Engine, shadow: Option<&Engine>) {
    let Some(shadow) = shadow else {
        assert!(
            recovered.dataset("d").is_none(),
            "an unacknowledged registration must not resurrect"
        );
        return;
    };
    let want = shadow.dataset("d").unwrap();
    let got = recovered
        .dataset("d")
        .expect("an acknowledged registration survives any crash");
    assert_eq!(got.live_ids().as_slice(), want.live_ids().as_slice());
    for &id in got.live_ids().iter() {
        assert_eq!(got.point(id), want.point(id), "row {id}");
    }
    let sky = recovered.execute(&SkylineQuery::new("d")).expect("query");
    let ids = got.live_ids();
    let expect: Vec<u32> = verify::naive_skyline(&got.snapshot())
        .iter()
        .map(|&k| ids[k as usize])
        .collect();
    assert_eq!(sky.indices(), expect.as_slice());
}

/// Kill the engine at every write ordinal of its clean run; each
/// recovered state must equal that run's acknowledged prefix, and
/// replaying twice must be a no-op.
fn check_kill_matrix(seed: u64, n0: usize, d: usize, ops: usize) {
    // Clean run: count the write ordinals the workload performs.
    let counting = Arc::new(FaultInjector::new(
        Arc::new(MemIo::new()),
        FaultPlan::default(),
    ));
    drive(Arc::clone(&counting) as Arc<dyn WalIo>, seed, n0, d, ops);
    let total_writes = counting.writes();
    assert!(total_writes >= 1, "the workload must write something");

    for kill_at in 1..=total_writes {
        let mem = MemIo::new();
        let inj = Arc::new(FaultInjector::new(
            Arc::new(mem.clone()),
            FaultPlan {
                kill_after_writes: Some(kill_at),
                ..FaultPlan::default()
            },
        ));
        let shadow = drive(inj, seed, n0, d, ops);
        let (recovered, report) = Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone()))
            .expect("recovery never refuses to boot");
        assert!(
            report.quarantined.is_empty(),
            "a kill mid-write is a torn tail, never corruption: {:?}",
            report.quarantined
        );
        assert_matches_shadow(&recovered, shadow.as_ref());
        recovered.shutdown();
        drop(recovered);

        // Double replay is idempotent: a second boot over the
        // truncated store rebuilds the same state.
        let (again, _) = Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone()))
            .expect("second recovery");
        assert_matches_shadow(&again, shadow.as_ref());
    }
}

/// A transient ENOSPC at a random write refuses exactly one batch;
/// everything acknowledged around it survives a restart.
fn check_enospc(seed: u64, n0: usize, d: usize, ops: usize, enospc_at: u64) {
    let mem = MemIo::new();
    let inj = Arc::new(FaultInjector::new(
        Arc::new(mem.clone()),
        FaultPlan {
            enospc_on_write: Some(enospc_at),
            ..FaultPlan::default()
        },
    ));
    let mut s = seed;
    let (engine, _) = Engine::open_durable_with_io(DIR, cfg(), inj).expect("open on empty store");
    let base: Vec<Vec<f32>> = (0..n0)
        .map(|_| (0..d).map(|_| (splitmix64(&mut s) % 5) as f32).collect())
        .collect();
    let data = Dataset::from_rows(&base).unwrap();
    let shadow = Engine::with_config(cfg());
    let registered = engine.try_register("d", data.clone()).is_ok();
    if registered {
        shadow.register("d", data);
        for _ in 0..ops {
            let live = shadow.dataset("d").unwrap().live_ids().as_slice().to_vec();
            let (inserts, deletes) = step(&mut s, d, &live);
            if engine.update_batch("d", &inserts, &deletes).is_ok() {
                shadow.update_batch("d", &inserts, &deletes).unwrap();
            }
        }
    }
    engine.shutdown();
    drop(engine);

    let (recovered, report) = Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone()))
        .expect("recovery after a transient ENOSPC");
    assert!(report.quarantined.is_empty());
    assert_matches_shadow(&recovered, registered.then_some(&shadow));
}

/// Flipping one bit inside an interior WAL record quarantines that
/// dataset and only it — a co-resident healthy dataset keeps serving
/// reads and writes through the same recovered engine.
fn check_interior_flip(seed: u64, offset: usize, mask: u8) {
    let mem = MemIo::new();
    let mut s = seed;
    let mk = |s: &mut u64, n: usize| -> Vec<Vec<f32>> {
        (0..n)
            .map(|_| (0..3).map(|_| (splitmix64(s) % 5) as f32).collect())
            .collect()
    };
    {
        let (engine, _) =
            Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone())).expect("open");
        engine.register("sick", Dataset::from_rows(&mk(&mut s, 5)).unwrap());
        engine.register("ok", Dataset::from_rows(&mk(&mut s, 5)).unwrap());
        for _ in 0..3 {
            engine.update_batch("sick", &mk(&mut s, 2), &[]).unwrap();
            engine.update_batch("ok", &mk(&mut s, 2), &[]).unwrap();
        }
        engine.shutdown();
    }
    // Flip inside the first record's payload (the frame is an 8B
    // header + a 53B payload, and two more records follow), so the
    // damage is unambiguously interior — never a torn tail.
    let wal = Path::new(DIR).join("datasets/sick/wal.log");
    assert!(mem.corrupt(&wal, offset, mask));

    let (engine, report) =
        Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone())).expect("degraded boot");
    assert_eq!(report.quarantined.len(), 1, "{:?}", report.quarantined);
    assert_eq!(report.quarantined[0].0.as_str(), "sick");
    assert!(matches!(
        engine.execute(&SkylineQuery::new("sick")),
        Err(EngineError::DatasetQuarantined(_))
    ));
    // The healthy neighbour is untouched.
    engine
        .execute(&SkylineQuery::new("ok"))
        .expect("healthy read");
    engine
        .update_batch("ok", &mk(&mut s, 1), &[])
        .expect("healthy write");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recovery_equals_acknowledged_prefix_at_every_kill_point(
        seed in 0u64..=u64::MAX / 2,
        n0 in 1usize..16,
        d in 1usize..5,
        ops in 1usize..7,
    ) {
        check_kill_matrix(seed, n0, d, ops);
    }

    #[test]
    fn enospc_drops_exactly_the_refused_batch(
        seed in 0u64..=u64::MAX / 2,
        n0 in 1usize..12,
        d in 1usize..4,
        ops in 2usize..7,
        enospc_at in 1u64..8,
    ) {
        check_enospc(seed, n0, d, ops, enospc_at);
    }

    #[test]
    fn interior_bit_flips_quarantine_without_collateral(
        seed in 0u64..=u64::MAX / 2,
        offset in 8usize..40,
        mask in 1u8..=255,
    ) {
        check_interior_flip(seed, offset, mask);
    }
}
