//! Multi-thread session stress: mixed tenants with different priority
//! classes and quotas submit concurrently while a mutator thread
//! inserts and deletes rows. Cancellations, deadline expiries, and
//! quota rejections interleave with real execution.
//!
//! Invariants checked:
//! * every admitted ticket reaches exactly one terminal outcome (no
//!   hangs, no lost tickets — the admission counters balance);
//! * every successful result equals the naive skyline of the **pinned
//!   version's snapshot** — mutations landing after submission never
//!   tear a result;
//! * only the structured error taxonomy ever surfaces.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use skybench::{
    generate, verify, Distribution, Engine, EngineConfig, EngineError, Priority, SessionOptions,
    SkylineQuery, ThreadPool,
};

const SUBSPACES: [&[usize]; 5] = [&[0], &[1, 2], &[0, 2], &[0, 1], &[0, 1, 2]];

fn subspace_query(name: &str, i: usize) -> SkylineQuery {
    SkylineQuery::new(name).dims(SUBSPACES[i % SUBSPACES.len()].iter().copied())
}

#[test]
fn mixed_tenants_stress_with_interleaved_mutations() {
    let gen_pool = ThreadPool::new(4);
    let engine = Arc::new(Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    }));
    engine.register(
        "a",
        generate(Distribution::Independent, 400, 3, 11, &gen_pool),
    );
    engine.register(
        "b",
        generate(Distribution::Anticorrelated, 500, 3, 12, &gen_pool),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut step = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let name = if step % 2 == 0 { "a" } else { "b" };
                if step % 3 == 0 {
                    let entry = engine.dataset(name).expect("registered");
                    let live = entry.live_ids();
                    if let Some(&victim) = live.get((step as usize * 131) % live.len().max(1)) {
                        // Racing deletes may hit the same id; both
                        // orders are fine.
                        let _ = engine.delete(name, &[victim]);
                    }
                } else {
                    let v = (step % 97) as f32 / 97.0;
                    let row = vec![v, 1.0 - v, (step % 13) as f32 / 13.0];
                    engine.insert(name, &[row]).expect("insert is always valid");
                }
                step += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    };

    let mut handles = Vec::new();
    for t in 0..3usize {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let options = match t {
                0 => SessionOptions::new("vip").priority(Priority::High),
                1 => SessionOptions::new("web").max_in_flight(64),
                _ => SessionOptions::new("bulk")
                    .priority(Priority::Low)
                    .qps_cap(500),
            };
            let session = engine.open_session(options);
            let (mut ok, mut cancelled, mut expired, mut rejected, mut pin_lost, mut verified) =
                (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
            for i in 0..120usize {
                let name = if (t + i) % 2 == 0 { "a" } else { "b" };
                // Pin to the snapshot read just before submission; a
                // mutation racing in between surfaces as a structured
                // VersionUnavailable, not a torn result.
                let entry = engine.dataset(name).expect("registered");
                let mut query = subspace_query(name, i).pin_version(entry.version());
                if i % 11 == 0 {
                    // An already-expired deadline: must terminate
                    // without executing.
                    query = query.deadline(Duration::ZERO);
                }
                let ticket = match session.submit(&query) {
                    Ok(ticket) => ticket,
                    Err(EngineError::VersionUnavailable { .. }) => {
                        pin_lost += 1;
                        continue;
                    }
                    Err(e) if e.is_retryable() => {
                        rejected += 1;
                        continue;
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                };
                if i % 7 == 0 {
                    ticket.cancel();
                }
                match ticket.wait() {
                    Ok(result) => {
                        ok += 1;
                        assert_eq!(
                            result.dataset_version,
                            entry.version(),
                            "ticket must observe its pinned version"
                        );
                        if i % 3 == 0 {
                            let dims = SUBSPACES[i % SUBSPACES.len()];
                            let snap = entry.snapshot();
                            let expect: Vec<u32> = verify::naive_skyline_on(&snap, dims)
                                .iter()
                                .map(|&k| entry.live_ids()[k as usize])
                                .collect();
                            assert_eq!(
                                result.indices(),
                                expect.as_slice(),
                                "tenant {t} query {i} on {name} v{}",
                                entry.version()
                            );
                            verified += 1;
                        }
                    }
                    Err(EngineError::Cancelled) => cancelled += 1,
                    Err(EngineError::DeadlineExceeded) => expired += 1,
                    Err(e) => panic!("unexpected terminal outcome: {e}"),
                }
            }
            (ok, cancelled, expired, rejected, pin_lost, verified)
        }));
    }

    let mut totals = (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
    for h in handles {
        let (ok, cancelled, expired, rejected, pin_lost, verified) = h.join().unwrap();
        totals.0 += ok;
        totals.1 += cancelled;
        totals.2 += expired;
        totals.3 += rejected;
        totals.4 += pin_lost;
        totals.5 += verified;
    }
    stop.store(true, Ordering::Relaxed);
    mutator.join().unwrap();

    // Every submission is accounted for, and real work actually ran.
    let (ok, cancelled, expired, rejected, pin_lost, verified) = totals;
    assert_eq!(
        (ok + cancelled + expired + rejected + pin_lost) as usize,
        3 * 120
    );
    assert!(ok > 0, "some queries must succeed");
    assert!(verified > 0, "snapshot verification must actually run");
    assert!(expired > 0, "zero deadlines must expire");

    engine.shutdown();
    let stats = engine.session_stats();
    assert_eq!(stats.queued, 0, "shutdown drains the queue");
    assert_eq!(stats.internal_errors, 0, "no dispatch batch panicked");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.deadline_expired + stats.internal_errors,
        "every admitted ticket terminated exactly once: {stats:?}"
    );
    assert_eq!(
        u64::from(ok),
        stats.completed + stats.short_circuits,
        "successful waits = admitted completions + cache short-circuits: {stats:?}"
    );
}
