//! Deterministic tests of the session layer: admission, priorities,
//! quotas, deadlines, cancellation, pinning, and shutdown.
//!
//! Every test runs the engine in **manual dispatch mode**
//! (`background_dispatcher: false`) on a [`ManualClock`], so queue
//! order, quota windows, and deadline expiry are exact: nothing
//! happens until the test calls [`Engine::pump`] /
//! [`Engine::dispatch_now`] or advances the clock.

use std::sync::Arc;
use std::time::Duration;

use skybench::{
    generate, AdmissionConfig, Dataset, Distribution, Engine, EngineConfig, EngineError,
    ManualClock, Priority, QuotaKind, RejectReason, SessionOptions, SkylineQuery, Strategy,
    ThreadPool,
};

/// A 2-lane manual-dispatch engine on a shared manual clock, with a
/// small registered dataset.
fn manual_engine(queue_capacity: usize, max_batch: usize) -> (Engine, Arc<ManualClock>) {
    let clock = ManualClock::shared();
    let engine = Engine::with_clock(
        EngineConfig {
            threads: 2,
            admission: AdmissionConfig {
                queue_capacity,
                max_batch,
                background_dispatcher: false,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn skybench::Clock>,
    );
    engine.register(
        "d",
        Dataset::from_rows(&[
            vec![1.0, 9.0, 2.0, 8.0],
            vec![9.0, 1.0, 8.0, 2.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![2.0, 8.0, 1.0, 9.0],
        ])
        .unwrap(),
    );
    (engine, clock)
}

/// Distinct queries (different subspaces) so none is a cache duplicate
/// of another.
fn distinct_query(i: usize) -> SkylineQuery {
    let subspaces: [&[usize]; 6] = [&[0], &[1], &[0, 1], &[1, 2], &[2, 3], &[0, 3]];
    SkylineQuery::new("d").dims(subspaces[i % subspaces.len()].iter().copied())
}

#[test]
fn dispatch_pops_highest_priority_class_first() {
    let (engine, _clock) = manual_engine(8, 1);
    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));
    let normal = engine.open_session(SessionOptions::new("web"));
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));

    let l1 = low.submit(&distinct_query(0)).unwrap();
    let l2 = low.submit(&distinct_query(1)).unwrap();
    let n1 = normal.submit(&distinct_query(2)).unwrap();
    let h1 = high.submit(&distinct_query(3)).unwrap();
    assert!(l1.poll().is_none(), "nothing dispatches until pumped");

    // max_batch = 1: each pump pops exactly the head of the highest
    // non-empty class.
    assert_eq!(engine.pump(), 1);
    assert!(h1.poll().is_some() && n1.poll().is_none() && l1.poll().is_none());
    assert_eq!(engine.pump(), 1);
    assert!(n1.poll().is_some() && l1.poll().is_none());
    assert_eq!(engine.pump(), 1);
    assert!(
        l1.poll().is_some() && l2.poll().is_none(),
        "FIFO within a class"
    );
    assert_eq!(engine.pump(), 1);
    assert!(l2.poll().is_some());
    assert_eq!(engine.pump(), 0, "queue drained");

    for t in [&l1, &l2, &n1, &h1] {
        assert!(t.poll().unwrap().is_ok());
        assert_eq!(
            t.queue_wait(),
            Some(Duration::ZERO),
            "manual clock never advanced"
        );
    }
}

#[test]
fn dispatch_round_robins_across_tenants_within_a_class() {
    // One tenant's backlog cannot monopolize its class: the dispatcher
    // hands each tenant with queued work one turn per cycle, so a
    // single-ticket tenant dispatches third here, not last.
    let (engine, _clock) = manual_engine(16, 1);
    let alpha = engine.session("alpha");
    let beta = engine.session("beta");
    let gamma = engine.session("gamma");

    // Arrival order: alpha floods first, then beta, then gamma.
    let a1 = alpha.submit(&distinct_query(0)).unwrap();
    let a2 = alpha.submit(&distinct_query(1)).unwrap();
    let a3 = alpha.submit(&distinct_query(2)).unwrap();
    let b1 = beta.submit(&distinct_query(3)).unwrap();
    let b2 = beta.submit(&distinct_query(4)).unwrap();
    let g1 = gamma.submit(&distinct_query(5)).unwrap();

    // Strict FIFO would drain alpha's backlog before beta ever ran;
    // the fair share interleaves: one ticket per tenant per cycle,
    // FIFO within each tenant.
    let order = [&a1, &b1, &g1, &a2, &b2, &a3];
    for (i, expect) in order.iter().enumerate() {
        assert_eq!(engine.pump(), 1);
        assert!(
            expect.poll().is_some(),
            "turn {i}: the round-robin dispatched the wrong tenant"
        );
        for later in &order[i + 1..] {
            assert!(later.poll().is_none(), "turn {i}: a later turn ran early");
        }
    }
    assert_eq!(engine.pump(), 0, "queue drained");
    for t in order {
        assert!(t.poll().unwrap().is_ok());
    }
}

#[test]
fn per_query_priority_lowers_but_never_raises_the_class() {
    let (engine, _clock) = manual_engine(8, 1);
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));
    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));

    // A high-priority tenant may demote bulk work…
    let demoted = high
        .submit(&distinct_query(0).priority(Priority::Low))
        .unwrap();
    assert_eq!(demoted.priority(), Priority::Low);
    // …but a low-priority tenant cannot self-elevate into High.
    let sneak = low
        .submit(&distinct_query(1).priority(Priority::High))
        .unwrap();
    assert_eq!(
        sneak.priority(),
        Priority::Low,
        "clamped to the session's class"
    );

    let urgent = high.submit(&distinct_query(2)).unwrap();
    engine.pump();
    assert!(urgent.poll().is_some() && demoted.poll().is_none() && sneak.poll().is_none());
    engine.dispatch_now();
}

#[test]
fn tenant_bookkeeping_is_released_when_sessions_and_tickets_are_gone() {
    let (engine, _clock) = manual_engine(8, 64);
    let before = engine.session_stats().tenants;
    let session = engine.session("ephemeral");
    let clone = session.clone();
    assert_eq!(engine.session_stats().tenants, before + 1);

    let ticket = session.submit(&distinct_query(0)).unwrap();
    drop(session);
    drop(clone);
    // The in-flight ticket keeps the tenant's quota state alive…
    assert_eq!(engine.session_stats().tenants, before + 1);
    engine.dispatch_now();
    assert!(ticket.wait().is_ok());
    // …and termination releases it: no unbounded registry growth.
    assert_eq!(engine.session_stats().tenants, before);
}

#[test]
fn blocking_wrappers_ignore_caps_a_user_put_on_the_anonymous_tenant() {
    // A user session may (oddly) claim tenant "" with zero quotas; the
    // engine's internal session shares the name but bypasses quota
    // enforcement, so execute() keeps its no-rejection contract.
    let (engine, _clock) = manual_engine(16, 64);
    let throttled = engine.open_session(SessionOptions::new("").qps_cap(0).max_in_flight(0));
    assert!(throttled.submit(&distinct_query(0)).is_err());
    assert!(engine.execute(&distinct_query(1)).is_ok());
}

#[test]
fn deadline_of_duration_max_never_panics_or_expires() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    let t = session
        .submit(&distinct_query(0).deadline(Duration::MAX))
        .unwrap();
    engine.dispatch_now();
    assert!(t.wait().is_ok());
}

#[test]
fn blocking_wrappers_absorb_queue_full_backpressure() {
    // Queue capacity 2, manual dispatch: a 10-query batch through the
    // blocking wrapper must still answer everything (the old
    // execute_batch contract), draining the queue itself instead of
    // surfacing QueueFull.
    let (engine, _clock) = manual_engine(2, 1);
    let queries: Vec<SkylineQuery> = (0..10).map(distinct_query).collect();
    let results = engine.execute_batch(&queries);
    assert_eq!(results.len(), 10);
    for r in results {
        assert!(r.is_ok());
    }
    assert_eq!(engine.session_stats().queued, 0);
}

#[test]
fn full_priority_class_rejects_without_blocking_other_classes() {
    let (engine, _clock) = manual_engine(2, 64);
    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));

    let _a = low.submit(&distinct_query(0)).unwrap();
    let _b = low.submit(&distinct_query(1)).unwrap();
    let err = low.submit(&distinct_query(2)).unwrap_err();
    assert_eq!(
        err,
        EngineError::Rejected(RejectReason::QueueFull { queued: 2 })
    );
    assert!(err.is_retryable());

    // The low-priority flood cannot block high-priority admission.
    let h = high.submit(&distinct_query(3)).unwrap();
    engine.dispatch_now();
    assert!(h.wait().is_ok());
    let stats = engine.session_stats();
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.submitted, 3);
}

#[test]
fn qps_quota_rejects_at_the_cap_and_refills_with_the_clock() {
    let (engine, clock) = manual_engine(16, 64);
    let session = engine.open_session(SessionOptions::new("acme").qps_cap(2));

    // The token bucket starts full: a burst of exactly `cap`.
    let _t1 = session.submit(&distinct_query(0)).unwrap();
    let _t2 = session.submit(&distinct_query(1)).unwrap();
    let err = session.submit(&distinct_query(2)).unwrap_err();
    assert_eq!(
        err,
        EngineError::Rejected(RejectReason::QuotaExceeded {
            tenant: "acme".into(),
            quota: QuotaKind::Rate,
        })
    );
    assert!(err.is_retryable());

    // Refill is continuous at `cap` per second: 499 ms earns 0.998
    // tokens — still rejected — and 500 ms exactly one.
    clock.advance(Duration::from_millis(499));
    assert!(session.submit(&distinct_query(2)).is_err());
    clock.advance(Duration::from_millis(1));
    assert!(session.submit(&distinct_query(2)).is_ok());
    // That one token is spent; the next submission needs another.
    assert!(session.submit(&distinct_query(3)).is_err());
    assert_eq!(engine.session_stats().rejected_quota, 3);
    engine.dispatch_now();
}

#[test]
fn qps_quota_admits_no_burst_across_a_window_boundary() {
    // Pins the bugfix: the fixed-window limiter this replaced reset its
    // count at each whole second, so a full burst at t = 0.95 s plus
    // another at t = 1.05 s admitted 2×cap within 100 ms. The token
    // bucket bounds *any* burst at `cap` regardless of phase.
    let (engine, clock) = manual_engine(64, 64);
    let session = engine.open_session(SessionOptions::new("acme").qps_cap(4));

    clock.advance(Duration::from_millis(950));
    for i in 0..4 {
        assert!(session.submit(&distinct_query(i)).is_ok());
    }
    // Crossing the old window boundary earns only 100 ms × 4/s = 0.4
    // tokens: the second burst is rejected wholesale.
    clock.advance(Duration::from_millis(100));
    for i in 0..4 {
        assert!(
            session.submit(&distinct_query(i)).is_err(),
            "no fresh allowance at the boundary"
        );
    }
    assert_eq!(engine.session_stats().rejected_quota, 4);
    // A full second refills the full burst.
    clock.advance(Duration::from_secs(1));
    for i in 0..4 {
        assert!(session.submit(&distinct_query(i)).is_ok());
    }
    engine.dispatch_now();
}

#[test]
fn in_flight_quota_releases_when_tickets_terminate() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.open_session(SessionOptions::new("acme").max_in_flight(1));

    let t = session.submit(&distinct_query(0)).unwrap();
    let err = session.submit(&distinct_query(1)).unwrap_err();
    assert_eq!(
        err,
        EngineError::Rejected(RejectReason::QuotaExceeded {
            tenant: "acme".into(),
            quota: QuotaKind::InFlight,
        })
    );
    engine.dispatch_now();
    assert!(t.poll().unwrap().is_ok());
    // The slot is free again.
    let t2 = session.submit(&distinct_query(1)).unwrap();
    engine.dispatch_now();
    assert!(t2.poll().unwrap().is_ok());
}

#[test]
fn cache_hits_short_circuit_admission_and_quotas() {
    let (engine, _clock) = manual_engine(16, 64);
    // Warm the cache through the direct path.
    let q = distinct_query(0);
    engine.execute(&q).unwrap();

    // A tenant that could never queue anything still gets hits.
    let session = engine.open_session(SessionOptions::new("throttled").qps_cap(0));
    let err = session.submit(&distinct_query(1)).unwrap_err();
    assert!(matches!(
        err,
        EngineError::Rejected(RejectReason::QuotaExceeded { .. })
    ));
    let hit = session.submit(&q).unwrap();
    let result = hit.poll().expect("hits complete at submission").unwrap();
    assert!(result.cache_hit);
    assert_eq!(hit.queue_wait(), Some(Duration::ZERO));
    assert_eq!(engine.session_stats().short_circuits, 1);
}

#[test]
fn deadline_expiry_terminates_without_executing() {
    let (engine, clock) = manual_engine(16, 64);
    let session = engine.session("acme");

    let t = session
        .submit(&distinct_query(0).deadline(Duration::from_millis(10)))
        .unwrap();
    clock.advance(Duration::from_millis(20));
    engine.dispatch_now();
    assert_eq!(
        t.poll().unwrap().unwrap_err(),
        EngineError::DeadlineExceeded
    );
    assert_eq!(t.wait().unwrap_err(), EngineError::DeadlineExceeded);
    // The plan never ran: nothing was computed or cached.
    assert_eq!(engine.cache_stats().insertions, 0);
    assert_eq!(engine.session_stats().deadline_expired, 1);

    // An unexpired deadline executes normally.
    let t2 = session
        .submit(&distinct_query(1).deadline(Duration::from_millis(10)))
        .unwrap();
    clock.advance(Duration::from_millis(9));
    engine.dispatch_now();
    let r = t2.poll().unwrap().unwrap();
    assert!(!r.cache_hit);
    assert_eq!(t2.queue_wait(), Some(Duration::from_millis(9)));
}

#[test]
fn cancel_before_dispatch_never_runs_the_plan() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    let t = session.submit(&distinct_query(0)).unwrap();
    assert!(t.cancel(), "no outcome yet: cancellation registered");
    engine.dispatch_now();
    assert_eq!(t.poll().unwrap().unwrap_err(), EngineError::Cancelled);
    assert_eq!(engine.cache_stats().insertions, 0, "plan never ran");
    assert_eq!(engine.session_stats().cancelled, 1);
    assert!(!t.cancel(), "already terminal");
}

#[test]
fn shutdown_drains_admitted_tickets_then_rejects() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    let tickets: Vec<_> = (0..3)
        .map(|i| session.submit(&distinct_query(i)).unwrap())
        .collect();
    assert!(tickets.iter().all(|t| t.poll().is_none()));

    engine.shutdown();
    for t in &tickets {
        assert!(t.poll().unwrap().is_ok(), "shutdown drains, not drops");
        assert!(t.wait().is_ok());
    }
    assert_eq!(
        session.submit(&distinct_query(4)).unwrap_err(),
        EngineError::Rejected(RejectReason::Shutdown)
    );
    assert_eq!(
        engine.execute(&distinct_query(5)).unwrap_err(),
        EngineError::Rejected(RejectReason::Shutdown)
    );
    assert!(!EngineError::Rejected(RejectReason::Shutdown).is_retryable());
    // Idempotent.
    engine.shutdown();
    assert_eq!(engine.session_stats().rejected_shutdown, 2);
}

#[test]
fn tickets_observe_the_snapshot_current_at_submission() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");

    // Submit against v1, then mutate to v2 before dispatching.
    let t = session.submit(&SkylineQuery::new("d")).unwrap();
    assert_eq!(t.dataset_version(), 1);
    engine.insert("d", &[vec![0.5, 0.5, 0.5, 0.5]]).unwrap();
    assert_eq!(engine.dataset("d").unwrap().version(), 2);
    engine.dispatch_now();
    let r = t.poll().unwrap().unwrap();
    assert_eq!(
        r.dataset_version, 1,
        "queued mutations cannot tear the result"
    );
    assert_eq!(r.indices(), &[0, 1, 2, 3], "v1 skyline, without the v2 row");

    // Fresh submissions see v2.
    let r2 = session.execute(&SkylineQuery::new("d")).unwrap();
    assert_eq!(r2.dataset_version, 2);
    assert_eq!(r2.indices(), &[4], "the new point dominates everything");
}

#[test]
fn pin_version_asserts_the_submission_snapshot() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");

    let v1 = engine.dataset("d").unwrap().version();
    let t = session
        .submit(&SkylineQuery::new("d").pin_version(v1))
        .unwrap();
    engine.insert("d", &[vec![0.5, 0.5, 0.5, 0.5]]).unwrap();

    // The pin no longer matches the current version: rejected at
    // submission, structured error says which versions.
    assert_eq!(
        session
            .submit(&SkylineQuery::new("d").pin_version(v1))
            .unwrap_err(),
        EngineError::VersionUnavailable {
            requested: v1,
            current: v1 + 1,
        }
    );

    // The already-admitted pinned ticket still serves its snapshot.
    engine.dispatch_now();
    assert_eq!(t.poll().unwrap().unwrap().dataset_version, v1);
}

#[test]
fn wait_timeout_in_manual_mode_drives_the_queue() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    let t = session.submit(&distinct_query(0)).unwrap();
    // The waiting thread dispatches the batch itself.
    let out = t
        .wait_timeout(Duration::from_secs(5))
        .expect("dispatched inline");
    assert!(out.is_ok());
}

#[test]
fn invalid_queries_fail_at_submission_without_a_ticket() {
    let (engine, _clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    assert_eq!(
        session.submit(&SkylineQuery::new("missing")).unwrap_err(),
        EngineError::UnknownDataset("missing".into())
    );
    assert_eq!(
        session
            .submit(&SkylineQuery::new("d").dims([9]))
            .unwrap_err(),
        EngineError::DimOutOfRange { dim: 9, dims: 4 }
    );
    let stats = engine.session_stats();
    assert_eq!((stats.submitted, stats.queued), (0, 0));
}

#[test]
fn queue_wait_is_measured_on_the_engine_clock() {
    let (engine, clock) = manual_engine(16, 64);
    let session = engine.session("acme");
    let t = session.submit(&distinct_query(0)).unwrap();
    clock.advance(Duration::from_millis(250));
    engine.dispatch_now();
    assert_eq!(t.queue_wait(), Some(Duration::from_millis(250)));
}

#[test]
fn dequeue_within_a_class_is_earliest_deadline_first() {
    let (engine, _clock) = manual_engine(8, 1);
    let session = engine.session("web");
    let relaxed = session
        .submit(&distinct_query(0).deadline(Duration::from_secs(60)))
        .unwrap();
    let tight = session
        .submit(&distinct_query(1).deadline(Duration::from_secs(5)))
        .unwrap();
    let open = session.submit(&distinct_query(2)).unwrap();

    // max_batch = 1: the tightest deadline runs first despite arriving
    // second; undeadlined tickets go last.
    assert_eq!(engine.pump(), 1);
    assert!(tight.poll().is_some() && relaxed.poll().is_none() && open.poll().is_none());
    assert_eq!(engine.pump(), 1);
    assert!(relaxed.poll().is_some() && open.poll().is_none());
    assert_eq!(engine.pump(), 1);
    assert!(open.poll().is_some());
    for t in [&tight, &relaxed, &open] {
        assert!(t.poll().unwrap().is_ok());
    }
}

#[test]
fn aged_low_ticket_overtakes_a_fresh_high_one() {
    // Class aging (default: one class per 100 ms of queue wait) is the
    // anti-starvation valve: after 200 ms a Low ticket dispatches as
    // High, and seniority breaks the tie against genuinely-High work
    // submitted later.
    let (engine, clock) = manual_engine(8, 1);
    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));

    let aged = low.submit(&distinct_query(0)).unwrap();
    clock.advance(Duration::from_millis(200));
    let fresh = high.submit(&distinct_query(1)).unwrap();

    assert_eq!(engine.pump(), 1);
    assert!(
        aged.poll().is_some() && fresh.poll().is_none(),
        "the starved Low ticket dispatches first"
    );
    assert_eq!(engine.pump(), 1);
    assert!(fresh.poll().unwrap().is_ok());
}

#[test]
fn zero_age_boost_restores_strict_priority() {
    let clock = ManualClock::shared();
    let engine = Engine::with_clock(
        EngineConfig {
            threads: 2,
            admission: AdmissionConfig {
                max_batch: 1,
                background_dispatcher: false,
                age_boost_after: Duration::ZERO,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn skybench::Clock>,
    );
    engine.register(
        "d",
        Dataset::from_rows(&[vec![1.0, 9.0, 2.0, 8.0], vec![9.0, 1.0, 8.0, 2.0]]).unwrap(),
    );
    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));

    let starved = low.submit(&distinct_query(0)).unwrap();
    clock.advance(Duration::from_secs(3600));
    let fresh = high.submit(&distinct_query(1)).unwrap();
    assert_eq!(engine.pump(), 1);
    assert!(
        fresh.poll().is_some() && starved.poll().is_none(),
        "aging disabled: strict class order holds no matter the wait"
    );
    engine.dispatch_now();
}

#[test]
fn short_wait_timeout_on_a_frozen_manual_clock_still_drives_the_queue() {
    // Pins the clock-drift bugfix: the timeout is measured on the
    // engine clock, so wall time passing consumes none of it. Even a
    // 1 ns budget lets the manual-mode waiter dispatch and collect the
    // result instead of reporting a wall-clock timeout.
    let (engine, _clock) = manual_engine(8, 64);
    let session = engine.session("web");
    let t = session.submit(&distinct_query(0)).unwrap();
    let out = t
        .wait_timeout(Duration::from_nanos(1))
        .expect("the engine clock never advanced, so the timeout never fired");
    assert!(out.is_ok());
}

#[test]
fn wait_timeout_expires_on_engine_clock_advance_for_an_unrunnable_ticket() {
    // A ticket the waiter cannot self-serve: another thread's pump owns
    // it. The waiter must report a timeout once (and only because) the
    // manual clock jumps past the expiry.
    let (engine, clock) = manual_engine(8, 64);
    let session = engine.session("web");
    let t = session.submit(&distinct_query(0)).unwrap();
    // Consume the timeout budget up front: expiry lands at `now`.
    clock.advance(Duration::from_secs(1));
    assert!(
        t.wait_timeout(Duration::ZERO).is_none(),
        "zero engine-clock budget, pending ticket: timeout"
    );
    engine.dispatch_now();
    assert!(
        t.wait_timeout(Duration::ZERO).is_some(),
        "terminal outcomes are returned even at zero budget"
    );
}

#[test]
fn mid_batch_dispatch_steals_queued_higher_class_tickets() {
    // Semi-timed (generous margins): two pool-wide Low queries occupy
    // one pump on a helper thread; a High ticket submitted while the
    // first one runs must be stolen and finished by that same pump —
    // before the second Low query — rather than waiting out the batch.
    let clock = ManualClock::shared();
    let engine = Arc::new(Engine::with_clock(
        EngineConfig {
            threads: 2,
            cache_bytes: 0,
            admission: AdmissionConfig {
                max_batch: 2,
                background_dispatcher: false,
                ..AdmissionConfig::default()
            },
            ..EngineConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn skybench::Clock>,
    ));
    let pool = ThreadPool::new(2);
    engine.register(
        "big",
        generate(Distribution::Anticorrelated, 120_000, 5, 7, &pool),
    );
    engine.register(
        "d",
        Dataset::from_rows(&[vec![1.0, 9.0], vec![9.0, 1.0]]).unwrap(),
    );

    let qa = SkylineQuery::new("big");
    let qb = SkylineQuery::new("big").dims([0, 1, 2, 3]);
    for q in [&qa, &qb] {
        let plan = engine.plan(q).unwrap();
        assert!(
            matches!(plan.strategy, Strategy::Algorithm(a) if a.is_parallel()),
            "precondition: the big queries must take the pool-wide path, got {:?}",
            plan.strategy
        );
    }

    let low = engine.open_session(SessionOptions::new("bulk").priority(Priority::Low));
    let high = engine.open_session(SessionOptions::new("vip").priority(Priority::High));
    let la = low.submit(&qa).unwrap();
    let lb = low.submit(&qb).unwrap();

    let helper = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || engine.pump())
    };
    // Let the helper pop its batch and start the first big query, then
    // queue the High ticket into its steal window.
    std::thread::sleep(Duration::from_millis(20));
    let h = high.submit(&SkylineQuery::new("d")).unwrap();
    assert_eq!(
        helper.join().unwrap(),
        2,
        "the pump popped both Low tickets"
    );

    assert!(
        h.poll().is_some(),
        "the High ticket was stolen mid-batch; nothing else ever pumped"
    );
    assert!(la.poll().is_some() && lb.poll().is_some());
    assert!(h.poll().unwrap().is_ok());
    engine.shutdown();
}
