//! Property-based testing of the skyline query family: random
//! interleavings of inserts, deletes, and queries of every
//! [`QueryKind`] — plain skyline, `k`-skyband, top-`k` dominating —
//! against plain and sharded registrations must always agree with the
//! naive counting references over the materialized live rows, across
//! subspaces, Min/Max preferences, and the skyband-ancestor cache
//! (each scenario interleaves wide-band "seed" queries so ancestor
//! derivations race the mutation stream).
//!
//! The model mirrors the engine's stable-id contract from
//! `property_engine_updates`: every live row is tracked as
//! `(stable id, coordinates)` and compaction renumbers the model
//! exactly as the catalog does.

use proptest::prelude::*;
use skybench::prelude::*;
use skybench::{verify, PartitionerKind, QueryKind, SpanKind, Strategy};

/// Deterministic mutation/query driver (splitmix-ish), seeded per case.
struct Driver(u64);

impl Driver {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Small integer alphabet: forces ties, duplicates, and coincident
    /// points — the hard cases of dominance counting.
    fn coord(&mut self) -> f32 {
        (self.next() % 5) as f32
    }
}

/// The shadow model: live rows as (stable id, coordinates), ascending
/// in id — mirroring the catalog's live list.
struct Model {
    rows: Vec<(u32, Vec<f32>)>,
}

impl Model {
    fn materialize(&self, d: usize) -> Dataset {
        let flat: Vec<f32> = self
            .rows
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        Dataset::from_flat(flat, d).expect("model rows are valid")
    }

    fn renumber(&mut self) {
        for (k, (id, _)) in self.rows.iter_mut().enumerate() {
            *id = k as u32;
        }
    }
}

/// A random operator: skyline biased, skyband and top-k dominating
/// with small k (including the k = 0 trivial edge).
fn random_kind(drv: &mut Driver) -> QueryKind {
    match drv.next() % 5 {
        0 => QueryKind::Skyline,
        1 | 2 => QueryKind::Skyband {
            k: drv.below(5) as u32,
        },
        _ => QueryKind::TopKDominating {
            k: drv.below(6) as u32,
        },
    }
}

/// Executes `kind` on the given subspace and checks it against the
/// naive counting references (ids and counts both).
fn check_kind(
    engine: &Engine,
    model: &Model,
    kind: QueryKind,
    dims: &[usize],
    prefs: &[Preference],
    max_mask: u32,
) {
    let d = dims
        .iter()
        .max()
        .map_or(1, |&m| m + 1)
        .max(model.rows.first().map(|(_, r)| r.len()).unwrap_or(1));
    let got = engine
        .execute(
            &SkylineQuery::new("m")
                .dims(dims.iter().copied())
                .preference(prefs.iter().copied())
                .kind(kind),
        )
        .expect("valid family query");
    let data = model.materialize(d);
    let context = |sfx: &str| {
        format!(
            "{kind:?} dims {dims:?} mask {max_mask:#b} strategy {:?} reason {:?} (n = {}): {sfx}",
            got.plan.strategy,
            got.plan.reason,
            model.rows.len()
        )
    };
    match kind {
        QueryKind::Skyline => {
            let expect: Vec<u32> = verify::naive_skyline_on_pref(&data, dims, max_mask)
                .iter()
                .map(|&r| model.rows[r as usize].0)
                .collect();
            assert_eq!(got.indices(), expect.as_slice(), "{}", context("ids"));
            assert!(
                got.counts().is_none(),
                "{}",
                context("skyline results carry no counts")
            );
        }
        QueryKind::Skyband { k } => {
            let expect = verify::naive_skyband_on_pref(&data, dims, max_mask, k);
            let ids: Vec<u32> = expect
                .iter()
                .map(|&(r, _)| model.rows[r as usize].0)
                .collect();
            let counts: Vec<u32> = expect.iter().map(|&(_, c)| c).collect();
            assert_eq!(got.indices(), ids.as_slice(), "{}", context("ids"));
            assert_eq!(
                got.counts().expect("skyband results carry counts"),
                counts.as_slice(),
                "{}",
                context("counts")
            );
        }
        QueryKind::TopKDominating { k } => {
            let expect = verify::naive_top_k_dominating(&data, dims, max_mask, k);
            let ids: Vec<u32> = expect
                .iter()
                .map(|&(r, _)| model.rows[r as usize].0)
                .collect();
            let scores: Vec<u32> = expect.iter().map(|&(_, s)| s).collect();
            assert_eq!(got.indices(), ids.as_slice(), "{}", context("ids"));
            assert_eq!(
                got.counts().expect("top-k results carry scores"),
                scores.as_slice(),
                "{}",
                context("scores")
            );
        }
    }
}

/// One full scenario: build a (plain or sharded) dataset, interleave
/// mutations with family queries, check every result against the
/// naive references. Roughly half the query ops first warm the same
/// subspace with a wide skyband so the operator that follows is
/// served through the ancestor-derivation path — racing whatever
/// mutations came before.
fn check_scenario(
    d: usize,
    n0: usize,
    ops: usize,
    seed: u64,
    shard: Option<(usize, PartitionerKind)>,
) {
    let mut drv = Driver(seed);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let mut model = Model {
        rows: (0..n0 as u32)
            .map(|id| (id, (0..d).map(|_| drv.coord()).collect::<Vec<f32>>()))
            .collect(),
    };
    match shard {
        Some((k, kind)) => engine.register_sharded("m", model.materialize(d), k, kind),
        None => engine.register("m", model.materialize(d)),
    };

    let run_query = |model: &Model, drv: &mut Driver| {
        let dims: Vec<usize> = (0..d).filter(|_| drv.next() % 2 == 0).collect();
        let dims = if dims.is_empty() {
            vec![drv.below(d)]
        } else {
            dims
        };
        let prefs: Vec<Preference> = dims
            .iter()
            .map(|_| {
                if drv.next() % 2 == 0 {
                    Preference::Min
                } else {
                    Preference::Max
                }
            })
            .collect();
        let max_mask = dims
            .iter()
            .zip(&prefs)
            .filter(|(_, p)| **p == Preference::Max)
            .fold(0u32, |m, (dim, _)| m | (1 << dim));
        let kind = random_kind(drv);
        if drv.next() % 2 == 0 {
            // Warm the key with a wide ancestor first, so the operator
            // below exercises the derivation path on this version.
            let wide = QueryKind::Skyband {
                k: kind.k().max(4) * 2,
            };
            check_kind(&engine, model, wide, &dims, &prefs, max_mask);
        }
        check_kind(&engine, model, kind, &dims, &prefs, max_mask);
    };

    run_query(&model, &mut drv);
    for _ in 0..ops {
        match drv.next() % 4 {
            0 | 1 => {
                let k = 1 + drv.below(3);
                let rows: Vec<Vec<f32>> = (0..k)
                    .map(|_| (0..d).map(|_| drv.coord()).collect())
                    .collect();
                let report = engine.insert("m", &rows).expect("valid insert");
                for (row, &id) in rows.iter().zip(&report.inserted_ids) {
                    model.rows.push((id, row.clone()));
                }
                if report.compacted {
                    model.renumber();
                }
            }
            2 => {
                if model.rows.is_empty() {
                    continue;
                }
                let victim = model.rows[drv.below(model.rows.len())].0;
                let report = engine.delete("m", &[victim]).expect("live victim");
                model.rows.retain(|(id, _)| *id != victim);
                if report.compacted {
                    model.renumber();
                }
            }
            _ => run_query(&model, &mut drv),
        }
    }
    // Final sweep: every operator on the full space.
    let full: Vec<usize> = (0..d).collect();
    let prefs = vec![Preference::Min; d];
    for kind in [
        QueryKind::Skyline,
        QueryKind::Skyband { k: 2 },
        QueryKind::TopKDominating { k: 3 },
    ] {
        check_kind(&engine, &model, kind, &full, &prefs, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Plain registrations under mutation.
    #[test]
    fn family_matches_naive_on_plain_datasets(
        d in 1usize..=4,
        n0 in 0usize..=40,
        ops in 8usize..=24,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(d, n0, ops, seed, None);
    }

    // Sharded registrations under mutation, across every partitioner.
    #[test]
    fn family_matches_naive_on_sharded_datasets(
        d in 2usize..=4,
        n0 in 1usize..=48,
        ops in 6usize..=20,
        seed in 0u64..=u64::MAX / 2,
        part in 0usize..3,
    ) {
        let kind = [
            PartitionerKind::Random,
            PartitionerKind::Grid,
            PartitionerKind::Angular,
        ][part];
        check_scenario(d, n0, ops, seed, Some((2 + seed as usize % 3, kind)));
    }
}

/// The acceptance scenario for ancestor caching: a wide skyband
/// (k' = 8) warms the cache, and the plain skyline on the same key is
/// then served by filtering the stored dominator counts — traced as a
/// `cache_ancestor` span with **zero** dataset-scan spans of any
/// flavour.
#[test]
fn skyband_ancestor_serves_skyline_without_scanning() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let mut drv = Driver(0xace);
    let rows: Vec<Vec<f32>> = (0..2_000)
        .map(|_| (0..4).map(|_| (drv.next() % 1_000) as f32).collect())
        .collect();
    engine.register("m", Dataset::from_rows(&rows).unwrap());

    let warm = engine
        .execute(&SkylineQuery::new("m").skyband(8))
        .expect("valid skyband");
    assert!(!warm.cache_hit, "the seed query runs cold");

    let (got, trace) = engine
        .explain_analyze(&SkylineQuery::new("m"))
        .expect("telemetry is enabled");
    assert!(
        got.plan.reason.contains("ancestor"),
        "expected an ancestor-served plan, got {:?} ({:?})",
        got.plan.strategy,
        got.plan.reason
    );
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::CacheAncestor),
        "the derivation must be traced as a cache_ancestor span: {:?}",
        trace.spans.iter().map(|s| s.kind).collect::<Vec<_>>()
    );
    let scans = [
        SpanKind::Init,
        SpanKind::Prefilter,
        SpanKind::Pivot,
        SpanKind::PhaseOne,
        SpanKind::PhaseTwo,
        SpanKind::Merge,
        SpanKind::ShardScatter,
        SpanKind::ShardLocal,
        SpanKind::ShardMerge,
        SpanKind::Execute,
        SpanKind::CacheSeed,
    ];
    assert!(
        trace.spans.iter().all(|s| !scans.contains(&s.kind)),
        "an ancestor hit must not touch the dataset: {:?}",
        trace.spans.iter().map(|s| s.kind).collect::<Vec<_>>()
    );

    // The derived result is itself cached at its own key: the repeat
    // is a plain exact-key hit.
    let again = engine.execute(&SkylineQuery::new("m")).expect("valid");
    assert!(again.cache_hit);
    assert!(matches!(again.plan.strategy, Strategy::Cached));
    assert_eq!(again.indices(), got.indices());

    // And it is correct.
    let expect = verify::naive_skyline(&Dataset::from_rows(&rows).unwrap());
    assert_eq!(got.indices(), expect.as_slice());
}

/// Ancestor reuse picks narrower bands too: a k' = 8 skyband serves
/// k = 3 by count filtering, and a top-k' list serves top-k by
/// truncation — both with counts intact.
#[test]
fn ancestor_reuse_filters_bands_and_truncates_topk() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let mut drv = Driver(0xbead);
    let rows: Vec<Vec<f32>> = (0..600)
        .map(|_| (0..3).map(|_| (drv.next() % 50) as f32).collect())
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    engine.register("m", data.clone());
    let dims = [0usize, 1, 2];

    engine
        .execute(&SkylineQuery::new("m").skyband(8))
        .expect("valid");
    let band = engine
        .execute(&SkylineQuery::new("m").skyband(3))
        .expect("valid");
    assert!(
        band.plan.reason.contains("ancestor"),
        "skyband k = 3 must derive from the k' = 8 ancestor, got {:?}",
        band.plan.reason
    );
    let expect = verify::naive_skyband_on_pref(&data, &dims, 0, 3);
    let ids: Vec<u32> = expect.iter().map(|&(r, _)| r).collect();
    let counts: Vec<u32> = expect.iter().map(|&(_, c)| c).collect();
    assert_eq!(band.indices(), ids.as_slice());
    assert_eq!(band.counts().unwrap(), counts.as_slice());

    engine
        .execute(&SkylineQuery::new("m").top_k_dominating(10))
        .expect("valid");
    let top = engine
        .execute(&SkylineQuery::new("m").top_k_dominating(4))
        .expect("valid");
    assert!(
        top.plan.reason.contains("ancestor"),
        "top-4 must truncate the top-10 ancestor, got {:?}",
        top.plan.reason
    );
    let expect = verify::naive_top_k_dominating(&data, &dims, 0, 4);
    let ids: Vec<u32> = expect.iter().map(|&(r, _)| r).collect();
    let scores: Vec<u32> = expect.iter().map(|&(_, s)| s).collect();
    assert_eq!(top.indices(), ids.as_slice());
    assert_eq!(top.counts().unwrap(), scores.as_slice());

    // A mutation bumps the dataset version: the stale ancestor must
    // NOT serve the next query, and the answer tracks the new rows.
    engine
        .insert("m", &[vec![0.0, 0.0, 0.0]])
        .expect("valid insert");
    let fresh = engine
        .execute(&SkylineQuery::new("m").skyband(3))
        .expect("valid");
    let mut rows2 = rows.clone();
    rows2.push(vec![0.0, 0.0, 0.0]);
    let data2 = Dataset::from_rows(&rows2).unwrap();
    let expect = verify::naive_skyband_on_pref(&data2, &dims, 0, 3);
    let ids: Vec<u32> = expect.iter().map(|&(r, _)| r).collect();
    assert_eq!(
        fresh.indices(),
        ids.as_slice(),
        "post-mutation skyband must reflect the new version, plan {:?} ({:?})",
        fresh.plan.strategy,
        fresh.plan.reason
    );
}
