//! Cross-algorithm agreement: every algorithm in the suite must produce
//! the definitionally correct skyline on every workload family.

use skybench::prelude::*;
use skybench::{generate, quantize, verify};

fn assert_all_agree(data: &Dataset, label: &str) {
    let expect = verify::naive_skyline(data);
    verify::check_skyline(data, &expect).unwrap_or_else(|e| panic!("{label}: bad oracle: {e}"));
    let pool = std::sync::Arc::new(ThreadPool::new(2));
    for algo in Algorithm::ALL {
        let sky = SkylineBuilder::new()
            .algorithm(algo)
            .pool(std::sync::Arc::clone(&pool))
            .compute(data);
        assert_eq!(
            sky.indices(),
            expect.as_slice(),
            "{label}: {algo} disagrees with the naive reference"
        );
    }
}

#[test]
fn synthetic_distributions() {
    let pool = ThreadPool::new(2);
    for dist in [
        Distribution::Correlated,
        Distribution::Independent,
        Distribution::Anticorrelated,
    ] {
        for (n, d) in [(400usize, 2usize), (800, 5), (300, 12)] {
            let data = generate(dist, n, d, 1234, &pool);
            assert_all_agree(&data, &format!("{dist:?} n={n} d={d}"));
        }
    }
}

#[test]
fn quantised_duplicate_heavy_data() {
    let pool = ThreadPool::new(2);
    for levels in [2u32, 4, 10] {
        let data = quantize(
            &generate(Distribution::Independent, 900, 3, 77, &pool),
            levels,
        );
        assert_all_agree(&data, &format!("quantised levels={levels}"));
    }
}

#[test]
fn degenerate_shapes() {
    // Empty.
    let empty = Dataset::from_flat(vec![], 4).unwrap();
    assert_all_agree(&empty, "empty");
    // Single point.
    let one = Dataset::from_rows(&[vec![5.0, 5.0]]).unwrap();
    assert_all_agree(&one, "singleton");
    // All identical.
    let same = Dataset::from_rows(&vec![vec![1.0, 2.0, 3.0]; 120]).unwrap();
    assert_all_agree(&same, "identical");
    // One dimension: skyline = all copies of the minimum.
    let d1 =
        Dataset::from_rows(&(0..200).map(|i| vec![(i % 50) as f32]).collect::<Vec<_>>()).unwrap();
    assert_all_agree(&d1, "1-d");
    // Chain (total order).
    let chain = Dataset::from_rows(
        &(0..300)
            .map(|i| vec![i as f32, i as f32])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert_all_agree(&chain, "chain");
    // Antichain (everything is skyline).
    let anti = Dataset::from_rows(
        &(0..300)
            .map(|i| vec![i as f32, 300.0 - i as f32])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert_all_agree(&anti, "antichain");
}

#[test]
fn negative_values_from_max_preferences() {
    let pool = ThreadPool::new(2);
    let raw = generate(Distribution::Independent, 500, 4, 9, &pool);
    let data = raw
        .with_preferences(&[
            Preference::Max,
            Preference::Min,
            Preference::Max,
            Preference::Min,
        ])
        .unwrap();
    assert_all_agree(&data, "negated columns");
}

#[test]
fn extreme_magnitudes() {
    // Large spreads and tiny epsilons must not confuse any kernel.
    let data = Dataset::from_rows(&[
        vec![1e30, 1e-30],
        vec![1e-30, 1e30],
        vec![1e30, 1e30],
        vec![0.0, 0.0],
        vec![-1e20, 5.0],
    ])
    .unwrap();
    assert_all_agree(&data, "extreme magnitudes");
}
