//! Property-based testing with proptest: algorithm agreement and the
//! algebra the implementations rely on, on arbitrary inputs (including
//! ties, duplicates, and negative coordinates).

use proptest::prelude::*;
use skybench::prelude::*;
use skybench::{dominance, masks, norms, verify};

/// Arbitrary small datasets: up to 120 points in 1–6 dimensions, with
/// values drawn from a small integer alphabet to force ties/duplicates.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=6, 1usize..=120).prop_flat_map(|(d, n)| {
        proptest::collection::vec(-4i8..=4, n * d).prop_map(move |vals| {
            Dataset::from_flat(vals.into_iter().map(|v| v as f32).collect(), d).unwrap()
        })
    })
}

/// Arbitrary *continuous* datasets: finite f32 values.
fn continuous_dataset_strategy() -> impl Strategy<Value = Dataset> {
    (1usize..=5, 1usize..=80).prop_flat_map(|(d, n)| {
        proptest::collection::vec(-1.0e3f32..1.0e3, n * d)
            .prop_map(move |vals| Dataset::from_flat(vals, d).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree_on_tied_data(data in dataset_strategy()) {
        let expect = verify::naive_skyline(&data);
        for algo in Algorithm::ALL {
            let sky = SkylineBuilder::new().algorithm(algo).threads(2).compute(&data);
            prop_assert_eq!(sky.indices(), expect.as_slice(), "{} disagrees", algo);
        }
    }

    #[test]
    fn all_algorithms_agree_on_continuous_data(data in continuous_dataset_strategy()) {
        let expect = verify::naive_skyline(&data);
        for algo in Algorithm::ALL {
            let sky = SkylineBuilder::new().algorithm(algo).threads(2).compute(&data);
            prop_assert_eq!(sky.indices(), expect.as_slice(), "{} disagrees", algo);
        }
    }

    #[test]
    fn dominance_is_a_strict_partial_order(
        p in proptest::collection::vec(-10i8..=10, 4),
        q in proptest::collection::vec(-10i8..=10, 4),
        r in proptest::collection::vec(-10i8..=10, 4),
    ) {
        let f = |v: &[i8]| v.iter().map(|&x| x as f32).collect::<Vec<_>>();
        let (p, q, r) = (f(&p), f(&q), f(&r));
        // Irreflexive.
        prop_assert!(!dominance::strictly_dominates(&p, &p));
        // Antisymmetric.
        prop_assert!(
            !(dominance::strictly_dominates(&p, &q) && dominance::strictly_dominates(&q, &p))
        );
        // Transitive.
        if dominance::strictly_dominates(&p, &q) && dominance::strictly_dominates(&q, &r) {
            prop_assert!(dominance::strictly_dominates(&p, &r));
        }
        // Kernels agree.
        prop_assert_eq!(
            dominance::strictly_dominates(&p, &q),
            dominance::strictly_dominates_lanes(&p, &q)
        );
    }

    #[test]
    fn mask_subset_lemma(
        p in proptest::collection::vec(-8i8..=8, 5),
        q in proptest::collection::vec(-8i8..=8, 5),
        v in proptest::collection::vec(-8i8..=8, 5),
    ) {
        let f = |v: &[i8]| v.iter().map(|&x| x as f32).collect::<Vec<_>>();
        let (p, q, v) = (f(&p), f(&q), f(&v));
        if dominance::strictly_dominates(&p, &q) {
            let mp = masks::partition_mask(&p, &v);
            let mq = masks::partition_mask(&q, &v);
            prop_assert!(masks::is_subset(mp, mq));
            // And the monotone keys respect dominance.
            prop_assert!(norms::l1(&p) < norms::l1(&q));
            prop_assert!(norms::entropy(&p) < norms::entropy(&q));
        }
    }

    #[test]
    fn skyline_members_cover_everything(data in dataset_strategy()) {
        let sky = SkylineBuilder::new().threads(2).compute(&data);
        prop_assert!(verify::check_skyline(&data, sky.indices()).is_ok());
        // Non-empty data ⇒ non-empty skyline.
        if !data.is_empty() {
            prop_assert!(!sky.is_empty());
        }
    }

    #[test]
    fn progressive_equals_batch(data in dataset_strategy()) {
        for algo in [Algorithm::QFlow, Algorithm::Hybrid] {
            let builder = SkylineBuilder::new().algorithm(algo).threads(2).alpha(16);
            let mut streamed = Vec::new();
            let sky = builder.compute_progressive(&data, |b| streamed.extend_from_slice(b));
            streamed.sort_unstable();
            prop_assert_eq!(streamed, sky.indices().to_vec());
        }
    }
}
