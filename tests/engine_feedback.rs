//! Deterministic integration tests for the planner feedback loop.
//!
//! Everything time-driven runs on a [`ManualClock`]: the tests inject
//! synthetic (skewed) runtime observations, advance the clock by hand,
//! and trigger refits through the engine's own production path (a
//! recorded observation gives the refitter its time-gated chance) — no
//! sleeps, no real measurements, no flaky timing assertions. Strategy
//! checks go through [`Engine::plan`], which records nothing, so the
//! observation stream is exactly what the test injected.

use std::sync::Arc;
use std::time::Duration;

use skybench::prelude::*;
use skybench::{
    generate, verify, Clock, FeedbackConfig, ManualClock, Observation, PlanKind, PlannerConfig,
    Strategy,
};

const REFIT_INTERVAL: Duration = Duration::from_secs(1);

/// A feedback-enabled engine on a shared manual clock, plus the tick
/// fixture: a minuscule extra dataset whose cache-hit queries drive the
/// time-gated refit check without polluting any fitted bucket
/// (`Cached` observations never participate in fits).
fn feedback_engine(threads: usize) -> (Engine, Arc<ManualClock>) {
    let clock = ManualClock::shared();
    let engine = Engine::with_clock(
        EngineConfig {
            threads,
            feedback: FeedbackConfig {
                enabled: true,
                refit_interval: REFIT_INTERVAL,
                min_observations: 8,
                hysteresis: 0.15,
                // These tests pin the migration cadence exactly;
                // exploration is covered by the planner unit tests and
                // the equivalence property suite.
                explore_every: 0,
            },
            ..EngineConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    engine.register(
        "tick",
        Dataset::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(),
    );
    // Warm the tick query: every later execution is a cache hit.
    engine.execute(&SkylineQuery::new("tick")).unwrap();
    (engine, clock)
}

/// Runs one query whose only purpose is to let the engine's
/// observation path call `maybe_refit` — the production trigger.
fn tick(engine: &Engine) {
    let r = engine.execute(&SkylineQuery::new("tick")).unwrap();
    assert!(r.cache_hit, "the tick query must stay a hit");
}

fn algo_obs(
    algo: Algorithm,
    n: usize,
    d: usize,
    frac: f32,
    alpha: usize,
    micros: u64,
) -> Observation {
    Observation {
        kind: PlanKind::Algo(algo),
        n,
        d,
        max_mask: 0,
        sample_skyline_frac: Some(frac),
        alpha: Some(alpha),
        runtime: Duration::from_micros(micros),
        queue_wait: Duration::ZERO,
    }
}

#[test]
fn skewed_runtimes_migrate_qflow_to_hybrid_within_bounded_refits() {
    let (engine, clock) = feedback_engine(4);
    let pool = ThreadPool::new(2);
    // Correlated data: sparse sampled skyline → the static thresholds
    // choose Q-Flow.
    engine.register("d", generate(Distribution::Correlated, 20_000, 4, 7, &pool));
    let q = SkylineQuery::new("d");
    let before = engine.plan(&q).unwrap();
    assert_eq!(before.strategy, Strategy::Algorithm(Algorithm::QFlow));
    let frac = before.sample_skyline_frac.expect("parallel plans sample");
    let alpha_q = before.config.alpha_qflow;

    // Synthetic truth on "this machine": Hybrid is 3× faster at this
    // exact shape. Feed both sides of the comparison each round and
    // give the refitter its chance; the planner must migrate within a
    // bounded number of refits.
    const MAX_REFITS: u64 = 3;
    let fb = engine.feedback().expect("feedback is enabled");
    let mut migrated_after = None;
    for round in 1..=MAX_REFITS {
        for _ in 0..8 {
            fb.record(algo_obs(Algorithm::QFlow, 20_000, 4, frac, alpha_q, 900));
            fb.record(algo_obs(Algorithm::Hybrid, 20_000, 4, frac, 1_024, 300));
        }
        clock.advance(REFIT_INTERVAL);
        tick(&engine);
        assert_eq!(fb.stats().refits, round, "one refit per elapsed interval");
        if engine.plan(&q).unwrap().strategy == Strategy::Algorithm(Algorithm::Hybrid) {
            migrated_after = Some(round);
            break;
        }
    }
    let rounds = migrated_after.expect("planner never migrated to the observed winner");
    assert!(rounds <= MAX_REFITS);
    // The fitted threshold moved below the observed fraction — that is
    // *why* the plan changed.
    assert!(engine.planner_config().dense_frac < frac);

    // The migrated plan still answers correctly.
    let entry = engine.dataset("d").unwrap();
    let expect = verify::naive_skyline(&entry.snapshot());
    let got = engine.execute(&q).unwrap();
    assert_eq!(got.plan.strategy, Strategy::Algorithm(Algorithm::Hybrid));
    assert_eq!(got.indices(), expect.as_slice());
}

#[test]
fn skewed_runtimes_raise_the_bnl_ceiling() {
    let (engine, clock) = feedback_engine(4);
    let pool = ThreadPool::new(2);
    // n = 5000 sits between tiny_n (512) and small_n (8192): SFS.
    engine.register("d", generate(Distribution::Independent, 5_000, 3, 7, &pool));
    let q = SkylineQuery::new("d");
    assert_eq!(
        engine.plan(&q).unwrap().strategy,
        Strategy::Algorithm(Algorithm::Sfs)
    );

    // Observed truth: BNL is decisively faster at this cardinality.
    let fb = engine.feedback().expect("feedback is enabled");
    for _ in 0..8 {
        fb.record(Observation {
            kind: PlanKind::Algo(Algorithm::Bnl),
            n: 5_000,
            d: 3,
            max_mask: 0,
            sample_skyline_frac: Some(0.3),
            alpha: None,
            runtime: Duration::from_micros(150),
            queue_wait: Duration::ZERO,
        });
        fb.record(Observation {
            kind: PlanKind::Algo(Algorithm::Sfs),
            n: 5_000,
            d: 3,
            max_mask: 0,
            sample_skyline_frac: Some(0.3),
            alpha: None,
            runtime: Duration::from_micros(600),
            queue_wait: Duration::ZERO,
        });
    }
    clock.advance(REFIT_INTERVAL);
    tick(&engine);
    assert_eq!(
        engine.plan(&q).unwrap().strategy,
        Strategy::Algorithm(Algorithm::Bnl),
        "one decisive refit moves the crossover"
    );
    assert!(engine.planner_config().tiny_n >= 5_000);
}

#[test]
fn hysteresis_holds_plans_when_strategies_are_within_the_band() {
    let (engine, clock) = feedback_engine(4);
    let pool = ThreadPool::new(2);
    engine.register("d", generate(Distribution::Correlated, 20_000, 4, 7, &pool));
    let q = SkylineQuery::new("d");
    let before = engine.plan(&q).unwrap();
    assert_eq!(before.strategy, Strategy::Algorithm(Algorithm::QFlow));
    let frac = before.sample_skyline_frac.unwrap();
    let alpha_q = before.config.alpha_qflow;

    // Hybrid and Q-Flow trade a ~6 % advantage back and forth — well
    // inside the 15 % band. Refits run, but nothing may move: no
    // config installs, no plan oscillation.
    let fb = engine.feedback().expect("feedback is enabled");
    let baseline = (*engine.planner_config()).clone();
    for round in 0..6u64 {
        let (q_us, h_us) = if round % 2 == 0 {
            (106, 100)
        } else {
            (100, 106)
        };
        for _ in 0..8 {
            fb.record(algo_obs(Algorithm::QFlow, 20_000, 4, frac, alpha_q, q_us));
            fb.record(algo_obs(Algorithm::Hybrid, 20_000, 4, frac, 1_024, h_us));
        }
        clock.advance(REFIT_INTERVAL);
        tick(&engine);
        assert_eq!(
            engine.plan(&q).unwrap().strategy,
            Strategy::Algorithm(Algorithm::QFlow),
            "round {round}: plan must not oscillate inside the band"
        );
    }
    let stats = fb.stats();
    assert_eq!(stats.refits, 6, "refits ran on schedule");
    assert_eq!(stats.installs, 0, "no refit beat the hysteresis band");
    assert_eq!(*engine.planner_config(), baseline);
}

#[test]
fn refits_fire_only_when_the_manual_clock_says_so() {
    let (engine, clock) = feedback_engine(2);
    let fb = engine.feedback().expect("feedback is enabled");

    // Observations without elapsed time: never a refit.
    for _ in 0..32 {
        fb.record(algo_obs(Algorithm::QFlow, 20_000, 4, 0.1, 8_192, 500));
        tick(&engine);
    }
    assert_eq!(fb.stats().refits, 0);
    assert!(!fb.due());

    // One interval elapses: exactly one refit, however many
    // observations arrive afterwards within the same interval.
    clock.advance(REFIT_INTERVAL);
    assert!(fb.due());
    tick(&engine);
    tick(&engine);
    assert_eq!(fb.stats().refits, 1);

    // Advancing step by step: a refit per full interval, no drift.
    clock.advance(REFIT_INTERVAL / 2);
    tick(&engine);
    assert_eq!(fb.stats().refits, 1, "half an interval is not enough");
    clock.advance(REFIT_INTERVAL / 2);
    tick(&engine);
    assert_eq!(fb.stats().refits, 2);
}

#[test]
fn engine_records_observations_for_computed_and_cached_plans() {
    let (engine, _clock) = feedback_engine(2);
    let pool = ThreadPool::new(2);
    engine.register("d", generate(Distribution::Independent, 2_000, 3, 5, &pool));
    let before = engine.feedback_stats().observations;
    engine.execute(&SkylineQuery::new("d")).unwrap(); // cold: Sfs
    engine.execute(&SkylineQuery::new("d")).unwrap(); // warm: Cached
    engine.execute(&SkylineQuery::new("d").dims([1])).unwrap(); // min-scan
    let after = engine.feedback_stats().observations;
    assert_eq!(after - before, 3, "every completion is observed");
}

#[test]
fn disabled_feedback_keeps_the_engine_static() {
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let pool = ThreadPool::new(2);
    engine.register("d", generate(Distribution::Independent, 5_000, 3, 7, &pool));
    assert!(engine.feedback().is_none());
    engine.execute(&SkylineQuery::new("d")).unwrap();
    engine.execute(&SkylineQuery::new("d")).unwrap();
    assert_eq!(engine.feedback_stats(), Default::default());
    assert!(!engine.refit_feedback(), "nothing to refit");
    assert_eq!(*engine.planner_config(), PlannerConfig::default());
}
