//! Property-based testing of the sharded tier: for every partitioner
//! family × shard count × random interleaving of inserts, deletes, and
//! subspace queries, a shard-registered dataset must agree with
//! `verify::naive_skyline_on_pref` over the materialized live rows —
//! through per-shard tombstoning, segment growth, debt-driven shard
//! compaction, and whole-dataset compaction renumbering.
//!
//! The scenarios also race **pinned-snapshot queries against
//! mutations**: a ticket submitted pinned to the current version, with
//! a mutation batch landing before it is awaited, must still answer
//! from the version it pinned (the copy-on-write shard store keeps
//! that snapshot scannable).

use proptest::prelude::*;
use skybench::prelude::*;
use skybench::{verify, PartitionerKind, PlannerConfig, Strategy};

/// Deterministic mutation/query driver (splitmix-ish), seeded per case.
struct Driver(u64);

impl Driver {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Small integer alphabet: forces ties, duplicates, and coincident
    /// points across shard boundaries.
    fn coord(&mut self) -> f32 {
        (self.next() % 5) as f32
    }
}

/// The shadow model: live rows as (stable id, coordinates), ascending
/// in id — mirroring the catalog's live list.
struct Model {
    rows: Vec<(u32, Vec<f32>)>,
}

impl Model {
    fn materialize(&self, d: usize) -> Dataset {
        let flat: Vec<f32> = self
            .rows
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        Dataset::from_flat(flat, d).expect("model rows are valid")
    }

    fn renumber(&mut self) {
        for (k, (id, _)) in self.rows.iter_mut().enumerate() {
            *id = k as u32;
        }
    }
}

/// A random subspace + preference pair.
fn pick_query(d: usize, drv: &mut Driver) -> (Vec<usize>, u32) {
    let dims: Vec<usize> = (0..d).filter(|_| drv.next() % 2 == 0).collect();
    let dims = if dims.is_empty() {
        vec![drv.below(d)]
    } else {
        dims
    };
    let max_mask = dims
        .iter()
        .filter(|_| drv.next() % 2 == 0)
        .fold(0u32, |m, &dim| m | (1 << dim));
    (dims, max_mask)
}

fn to_query(dims: &[usize], max_mask: u32) -> SkylineQuery {
    SkylineQuery::new("m")
        .dims(dims.iter().copied())
        .preference(
            dims.iter()
                .map(|&dim| {
                    if max_mask & (1 << dim) != 0 {
                        Preference::Max
                    } else {
                        Preference::Min
                    }
                })
                .collect::<Vec<_>>(),
        )
}

/// Expected ids for `dims`/`max_mask` over a model state.
fn reference(model: &Model, d: usize, dims: &[usize], max_mask: u32) -> Vec<u32> {
    if model.rows.is_empty() {
        return Vec::new();
    }
    verify::naive_skyline_on_pref(&model.materialize(d), dims, max_mask)
        .iter()
        .map(|&k| model.rows[k as usize].0)
        .collect()
}

/// One full scenario against a shard-registered dataset.
fn check_scenario(k: usize, kind: PartitionerKind, d: usize, n0: usize, ops: usize, seed: u64) {
    let mut drv = Driver(seed);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        // Tiny thresholds force the sharded tier whenever possible,
        // and a twitchy debt trigger exercises per-shard compaction.
        planner: PlannerConfig {
            tiny_n: 4,
            small_n: 8,
            sharded_min_n: 16,
            ..PlannerConfig::default()
        },
        shard_debt_factor: Some(0.25),
        ..EngineConfig::default()
    });

    let mut model = Model {
        rows: (0..n0 as u32)
            .map(|id| (id, (0..d).map(|_| drv.coord()).collect::<Vec<f32>>()))
            .collect(),
    };
    engine.register_sharded("m", model.materialize(d), k, kind);
    let session = engine.session("prop");

    let run_query = |model: &Model, drv: &mut Driver| {
        let (dims, max_mask) = pick_query(d, drv);
        let got = engine.execute(&to_query(&dims, max_mask)).expect("valid");
        if let Some(merge) = &got.shard_merge {
            assert_eq!(merge.survivors, got.total_skyline_size());
        }
        assert_eq!(
            got.indices(),
            reference(model, d, &dims, max_mask).as_slice(),
            "dims {:?} mask {:#b} strategy {:?} ({kind:?} k={k}, n={})",
            dims,
            max_mask,
            got.plan.strategy,
            model.rows.len()
        );
        // The shard store never drifts from the catalog's live set.
        let entry = engine.dataset("m").expect("registered");
        let store = entry.sharded().expect("sharded registration");
        assert_eq!(store.live_len(), entry.live_len());
        assert_eq!(store.live_len(), model.rows.len());
    };

    run_query(&model, &mut drv);

    for _ in 0..ops {
        match drv.next() % 8 {
            // Insert a small batch.
            0 | 1 => {
                let batch = 1 + drv.below(3);
                let rows: Vec<Vec<f32>> = (0..batch)
                    .map(|_| (0..d).map(|_| drv.coord()).collect())
                    .collect();
                let report = engine.insert("m", &rows).expect("valid insert");
                for (row, &id) in rows.iter().zip(&report.inserted_ids) {
                    model.rows.push((id, row.clone()));
                }
                if report.compacted {
                    model.renumber();
                }
            }
            // Delete a small batch of random live rows.
            2 | 3 => {
                if model.rows.is_empty() {
                    continue;
                }
                let batch = (1 + drv.below(2)).min(model.rows.len());
                let mut victims: Vec<u32> = Vec::new();
                while victims.len() < batch {
                    let v = model.rows[drv.below(model.rows.len())].0;
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                let report = engine.delete("m", &victims).expect("live victims");
                model.rows.retain(|(id, _)| !victims.contains(id));
                if report.compacted {
                    model.renumber();
                }
            }
            // A pinned-snapshot query racing a mutation: submit pinned
            // to the current version, mutate, then await. The answer
            // must come from the pinned (pre-mutation) state.
            4 => {
                if model.rows.is_empty() {
                    continue;
                }
                let (dims, max_mask) = pick_query(d, &mut drv);
                let expect_before = reference(&model, d, &dims, max_mask);
                let version = engine.dataset("m").expect("registered").version();
                let ticket = session
                    .submit(&to_query(&dims, max_mask).pin_version(version))
                    .expect("current version is servable");
                // The race: land a mutation before awaiting the ticket.
                let row: Vec<f32> = (0..d).map(|_| drv.coord()).collect();
                let report = engine
                    .insert("m", std::slice::from_ref(&row))
                    .expect("valid");
                let pinned = ticket.wait().expect("pinned ticket completes");
                assert_eq!(
                    pinned.indices(),
                    expect_before.as_slice(),
                    "pinned v{version} must not observe the racing insert \
                     (dims {dims:?} mask {max_mask:#b}, {kind:?} k={k})"
                );
                assert_eq!(pinned.dataset_version, version);
                model.rows.push((report.inserted_ids[0], row));
                if report.compacted {
                    model.renumber();
                }
            }
            // Query.
            _ => {
                run_query(&model, &mut drv);
            }
        }
    }
    run_query(&model, &mut drv);

    // A cold re-registration of the final state (no cache, no delta
    // log) must plan through the sharded tier whenever it is eligible:
    // multiple shards and at least `sharded_min_n` live rows.
    if k > 1 && d >= 2 && model.rows.len() >= 16 {
        engine.register_sharded("cold", model.materialize(d), k, kind);
        let plan = engine.plan(&SkylineQuery::new("cold")).expect("valid");
        assert!(
            matches!(plan.strategy, Strategy::Sharded { .. }) || plan.effective_dims.len() < 2,
            "{} live rows over threshold 16 must plan sharded, got {:?}",
            model.rows.len(),
            plan.strategy
        );
        // Fresh registration: row indices are positions, not the
        // mutated dataset's stable ids.
        let cold = engine.execute(&SkylineQuery::new("cold")).expect("valid");
        let full: Vec<usize> = (0..d).collect();
        let expect = verify::naive_skyline_on_pref(&model.materialize(d), &full, 0);
        assert_eq!(cold.indices(), expect.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Every partitioner family × a random shard count × a random
    // interleaving, on datasets large enough to hit the sharded tier.
    #[test]
    fn sharded_maintenance_matches_naive(
        kind_index in 0usize..3,
        k in 2usize..=5,
        d in 2usize..=4,
        n0 in 32usize..=80,
        ops in 8usize..=24,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(k, PartitionerKind::ALL[kind_index], d, n0, ops, seed);
    }

    // Degenerate shapes: near-empty datasets, single-shard stores, and
    // shard counts exceeding the row count must all stay correct (the
    // planner simply declines the sharded tier when k == 1).
    #[test]
    fn sharded_edge_shapes_stay_correct(
        kind_index in 0usize..3,
        k in 1usize..=8,
        d in 1usize..=3,
        n0 in 0usize..=6,
        ops in 4usize..=12,
        seed in 0u64..=u64::MAX / 2,
    ) {
        check_scenario(k, PartitionerKind::ALL[kind_index], d, n0, ops, seed);
    }
}
