//! Deterministic integration tests for the durability subsystem:
//! WAL + snapshot roundtrips, idempotent double replay, torn-tail
//! truncation, checkpointing, planner-fit persistence, corruption
//! quarantine with re-registration lifting it, and panic containment
//! on the mutation path.
//!
//! Every test runs on [`MemIo`] — a shared in-memory filesystem —
//! so "crash and restart" is just dropping one engine and opening
//! another over the same store. Compaction is disabled
//! (`compact_fraction` above 1.0) wherever a test tracks stable ids
//! by hand; replay *through* compaction is covered by the recovery
//! property suite.

use std::path::Path;
use std::sync::Arc;

use skybench::persist::{FaultInjector, FaultPlan, MemIo, WalIo};
use skybench::prelude::*;
use skybench::{
    verify, DurabilityOptions, EngineError, FeedbackConfig, MetricValue, Observation, PlanKind,
};

const DIR: &str = "/durable";

fn cfg() -> EngineConfig {
    EngineConfig {
        threads: 2,
        compact_fraction: 2.0,
        ..EngineConfig::default()
    }
}

fn open(mem: &MemIo) -> (Engine, skybench::RecoveryReport) {
    Engine::open_durable_with_io(DIR, cfg(), Arc::new(mem.clone())).expect("open durable engine")
}

fn rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| (skybench::splitmix64(&mut s) % 997) as f32)
                .collect()
        })
        .collect()
}

/// Asserts the engine's live rows and skyline for `name` equal the
/// hand-tracked `(id, row)` model.
fn assert_state(engine: &Engine, name: &str, model: &[(u32, Vec<f32>)]) {
    let entry = engine.dataset(name).expect("dataset is present");
    let ids: Vec<u32> = model.iter().map(|(id, _)| *id).collect();
    assert_eq!(entry.live_ids().as_slice(), ids.as_slice());
    for (id, row) in model {
        assert_eq!(entry.point(*id), row.as_slice(), "row {id}");
    }
    let got = engine.execute(&SkylineQuery::new(name)).expect("query");
    let expect: Vec<u32> = verify::naive_skyline(&entry.snapshot())
        .iter()
        .map(|&k| ids[k as usize])
        .collect();
    assert_eq!(got.indices(), expect.as_slice());
}

fn counter(engine: &Engine, name: &str) -> u64 {
    engine
        .metrics()
        .samples
        .iter()
        .find_map(|s| match (&s.name, &s.value) {
            (n, MetricValue::Counter(v)) if n == name => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}

#[test]
fn durable_roundtrip_replays_acknowledged_mutations() {
    let mem = MemIo::new();
    let base = rows(6, 3, 1);
    let b1 = rows(2, 3, 2);
    let b2 = rows(1, 3, 3);
    let mut model: Vec<(u32, Vec<f32>)>;
    {
        let (engine, report) = open(&mem);
        assert!(engine.is_durable());
        assert_eq!(report.datasets, 0, "a fresh directory recovers nothing");
        engine.register("hotels", Dataset::from_rows(&base).unwrap());
        model = base
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r.clone()))
            .collect();
        engine.update_batch("hotels", &b1, &[1]).unwrap();
        model.retain(|(id, _)| *id != 1);
        model.push((6, b1[0].clone()));
        model.push((7, b1[1].clone()));
        engine.update_batch("hotels", &b2, &[0, 7]).unwrap();
        model.retain(|(id, _)| *id != 0 && *id != 7);
        model.push((8, b2[0].clone()));
        assert_state(&engine, "hotels", &model);
        engine.shutdown();
    }

    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, 1);
    assert_eq!(report.records_replayed, 2);
    assert_eq!(report.torn_tail_truncations, 0);
    assert!(report.quarantined.is_empty());
    assert_eq!(counter(&engine, "wal.records_replayed"), 2);
    assert_state(&engine, "hotels", &model);

    // Mutations keep flowing after recovery, and a second restart
    // replays the combined history — double replay is idempotent.
    let b3 = rows(1, 3, 4);
    engine.update_batch("hotels", &b3, &[2]).unwrap();
    model.retain(|(id, _)| *id != 2);
    model.push((9, b3[0].clone()));
    engine.shutdown();
    drop(engine);

    let (engine, report) = open(&mem);
    assert_eq!(report.records_replayed, 3);
    assert_state(&engine, "hotels", &model);
}

#[test]
fn torn_wal_tail_is_truncated_not_fatal() {
    let mem = MemIo::new();
    let base = rows(5, 2, 10);
    {
        let (engine, _) = open(&mem);
        engine.register("t", Dataset::from_rows(&base).unwrap());
        engine.update_batch("t", &rows(2, 2, 11), &[]).unwrap();
        engine.shutdown();
    }
    // A crash mid-append leaves a frame header that promises more
    // bytes than the file holds.
    let wal = Path::new(DIR).join("datasets/t/wal.log");
    let io: Arc<dyn WalIo> = Arc::new(mem.clone());
    io.append(&wal, &[0x40, 0, 0, 0, 0xde, 0xad]).unwrap();
    let torn_len = mem.len(&wal).unwrap();

    let (engine, report) = open(&mem);
    assert_eq!(report.torn_tail_truncations, 1);
    assert_eq!(report.records_replayed, 1, "the intact record replays");
    assert!(
        report.quarantined.is_empty(),
        "torn tails are not corruption"
    );
    assert_eq!(counter(&engine, "wal.torn_tail_truncations"), 1);
    assert!(
        mem.len(&wal).unwrap() < torn_len,
        "the tail is gone on disk"
    );
    engine.shutdown();
    drop(engine);

    // The truncation is durable: the next boot sees a clean log.
    let (_engine, report) = open(&mem);
    assert_eq!(report.torn_tail_truncations, 0);
    assert_eq!(report.records_replayed, 1);
}

#[test]
fn checkpoint_resets_the_wal_and_bounds_replay() {
    let mem = MemIo::new();
    let base = rows(4, 2, 20);
    let b1 = rows(2, 2, 21);
    let wal = Path::new(DIR).join("datasets/c/wal.log");
    {
        let (engine, _) = open(&mem);
        engine.register("c", Dataset::from_rows(&base).unwrap());
        engine.update_batch("c", &b1, &[0]).unwrap();
        assert!(mem.len(&wal).unwrap_or(0) > 0);
        engine.checkpoint("c").unwrap();
        assert_eq!(mem.len(&wal), None, "checkpoint resets the log");
        engine.shutdown();
    }
    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, 1);
    assert_eq!(
        report.records_replayed, 0,
        "everything lives in the snapshot now"
    );
    let mut model: Vec<(u32, Vec<f32>)> = base
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, r)| (i as u32, r.clone()))
        .collect();
    model.push((4, b1[0].clone()));
    model.push((5, b1[1].clone()));
    assert_state(&engine, "c", &model);
}

#[test]
fn tiny_checkpoint_threshold_auto_checkpoints_every_batch() {
    let mem = MemIo::new();
    let wal = Path::new(DIR).join("datasets/a/wal.log");
    {
        let (engine, _) = Engine::open_durable_with_options(
            DIR,
            cfg(),
            Arc::new(mem.clone()),
            DurabilityOptions {
                checkpoint_wal_bytes: 1,
            },
        )
        .unwrap();
        engine.register("a", Dataset::from_rows(&rows(3, 2, 30)).unwrap());
        for seed in 31..34 {
            engine.update_batch("a", &rows(1, 2, seed), &[]).unwrap();
            assert_eq!(mem.len(&wal), None, "every batch triggers a checkpoint");
        }
        engine.shutdown();
    }
    let (engine, report) = open(&mem);
    assert_eq!(report.records_replayed, 0);
    assert_eq!(engine.dataset("a").unwrap().live_ids().len(), 6);
}

#[test]
fn planner_fit_survives_restart() {
    let mem = MemIo::new();
    let feedback_cfg = || EngineConfig {
        feedback: FeedbackConfig {
            enabled: true,
            min_observations: 8,
            ..FeedbackConfig::default()
        },
        ..cfg()
    };
    let fitted;
    {
        let (engine, _) =
            Engine::open_durable_with_io(DIR, feedback_cfg(), Arc::new(mem.clone())).unwrap();
        let fb = engine.feedback().expect("feedback is enabled");
        // Skewed synthetic truth: Hybrid 3× faster than Q-Flow at this
        // shape. One forced refit must move (and persist) the fit.
        for _ in 0..8 {
            for (algo, us) in [(Algorithm::QFlow, 900), (Algorithm::Hybrid, 300)] {
                fb.record(Observation {
                    kind: PlanKind::Algo(algo),
                    n: 20_000,
                    d: 4,
                    max_mask: 0,
                    sample_skyline_frac: Some(0.02),
                    alpha: Some(1_024),
                    runtime: std::time::Duration::from_micros(us),
                    queue_wait: std::time::Duration::ZERO,
                });
            }
        }
        assert!(engine.refit_feedback(), "the skewed fit must install");
        fitted = engine.planner_config();
        engine.shutdown();
    }
    let (engine, report) =
        Engine::open_durable_with_io(DIR, feedback_cfg(), Arc::new(mem.clone())).unwrap();
    assert!(report.feedback_restored);
    assert_eq!(
        *engine.planner_config(),
        *fitted,
        "the restarted planner starts from the persisted thresholds"
    );
}

#[test]
fn interior_corruption_quarantines_only_the_sick_dataset() {
    let mem = MemIo::new();
    let healthy_rows = rows(5, 2, 40);
    {
        let (engine, _) = open(&mem);
        engine.register("sick", Dataset::from_rows(&rows(5, 2, 41)).unwrap());
        engine.register("healthy", Dataset::from_rows(&healthy_rows).unwrap());
        for seed in 42..45 {
            engine.update_batch("sick", &rows(1, 2, seed), &[]).unwrap();
            engine
                .update_batch("healthy", &rows(1, 2, seed + 10), &[])
                .unwrap();
        }
        engine.shutdown();
    }
    // Flip a payload bit inside the *first* of three records: a
    // checksum failure before the end of the log is real corruption,
    // not a torn tail.
    let wal = Path::new(DIR).join("datasets/sick/wal.log");
    assert!(mem.corrupt(&wal, 8, 0x10));

    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, 1, "only the healthy dataset recovers");
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].0, "sick");
    assert_eq!(counter(&engine, "recovery.quarantined"), 1);
    assert_eq!(engine.quarantined().len(), 1);

    // The sick dataset rejects everything with the dedicated error...
    assert!(matches!(
        engine.execute(&SkylineQuery::new("sick")),
        Err(EngineError::DatasetQuarantined(n)) if n == "sick"
    ));
    assert!(matches!(
        engine.update_batch("sick", &rows(1, 2, 50), &[]),
        Err(EngineError::DatasetQuarantined(_))
    ));
    // ...while the healthy one keeps serving reads and writes.
    engine.execute(&SkylineQuery::new("healthy")).unwrap();
    engine
        .update_batch("healthy", &rows(1, 2, 51), &[])
        .unwrap();

    // Re-registering replaces the corrupt files and lifts the
    // quarantine, durably.
    engine.register("sick", Dataset::from_rows(&rows(4, 2, 52)).unwrap());
    assert!(engine.quarantined().is_empty());
    engine.update_batch("sick", &rows(1, 2, 53), &[0]).unwrap();
    engine.shutdown();
    drop(engine);

    let (engine, report) = open(&mem);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.datasets, 2);
    engine.execute(&SkylineQuery::new("sick")).unwrap();
}

#[test]
fn corrupt_snapshot_quarantines_the_dataset() {
    let mem = MemIo::new();
    {
        let (engine, _) = open(&mem);
        engine.register("s", Dataset::from_rows(&rows(4, 2, 60)).unwrap());
        engine.shutdown();
    }
    let snap = Path::new(DIR).join("datasets/s/snapshot.sky");
    // Deep inside the payload, well past both header checksums.
    assert!(mem.corrupt(&snap, 70, 0x01));
    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, 0);
    assert_eq!(report.quarantined.len(), 1);
    assert!(matches!(
        engine.execute(&SkylineQuery::new("s")),
        Err(EngineError::DatasetQuarantined(_))
    ));
}

#[test]
fn enospc_refuses_the_batch_without_applying_it() {
    let mem = MemIo::new();
    let base = rows(4, 2, 70);
    let model: Vec<(u32, Vec<f32>)> = base
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u32, r.clone()))
        .collect();
    {
        let (engine, _) = open(&mem);
        engine.register("e", Dataset::from_rows(&base).unwrap());
        engine.shutdown();
    }
    // Writes 1..2 are the reopened engine's replay bookkeeping-free
    // path (none happen on open), so the very next append hits the
    // injected ENOSPC.
    let inj = Arc::new(FaultInjector::new(
        Arc::new(mem.clone()),
        FaultPlan {
            enospc_on_write: Some(1),
            ..FaultPlan::default()
        },
    ));
    let (engine, _) = Engine::open_durable_with_io(DIR, cfg(), inj).unwrap();
    let err = engine
        .update_batch("e", &rows(1, 2, 71), &[0])
        .expect_err("the append failed, so the batch must not apply");
    assert!(matches!(err, EngineError::Persist(_)), "got {err:?}");
    assert_state(&engine, "e", &model);
    // The next batch (write 2) goes through: ENOSPC was transient.
    engine.update_batch("e", &rows(1, 2, 72), &[]).unwrap();
    engine.shutdown();
    drop(engine);

    let (engine, report) = open(&mem);
    assert_eq!(report.records_replayed, 1, "only the acknowledged batch");
    let mut model = model;
    model.push((4, rows(1, 2, 72)[0].clone()));
    assert_state(&engine, "e", &model);
}

#[test]
fn panicking_mutation_reports_internal_and_leaves_the_dataset_mutable() {
    let mem = MemIo::new();
    {
        let (engine, _) = open(&mem);
        engine.register("p", Dataset::from_rows(&rows(4, 2, 80)).unwrap());
        engine.shutdown();
    }
    let inj = Arc::new(FaultInjector::new(
        Arc::new(mem.clone()),
        FaultPlan {
            panic_on_write: Some(1),
            ..FaultPlan::default()
        },
    ));
    let (engine, _) = Engine::open_durable_with_io(DIR, cfg(), inj).unwrap();
    // The injected panic fires inside the WAL append — mid-mutation,
    // under the dataset's writer lock.
    let err = engine
        .update_batch("p", &rows(1, 2, 81), &[])
        .expect_err("the panic must surface as an error, not unwind");
    assert!(matches!(err, EngineError::Internal), "got {err:?}");

    // The poisoned lock recovers: the dataset stays mutable and
    // queryable, and the durable history shows only acknowledged
    // batches.
    engine.update_batch("p", &rows(1, 2, 82), &[1]).unwrap();
    engine.execute(&SkylineQuery::new("p")).unwrap();
    engine.shutdown();
    drop(engine);

    let (engine, report) = open(&mem);
    assert_eq!(report.records_replayed, 1);
    let mut model: Vec<(u32, Vec<f32>)> = rows(4, 2, 80)
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u32, r.clone()))
        .collect();
    model.retain(|(id, _)| *id != 1);
    model.push((4, rows(1, 2, 82)[0].clone()));
    assert_state(&engine, "p", &model);
}

#[test]
fn hostile_dataset_names_roundtrip_through_escaping() {
    let mem = MemIo::new();
    let names = ["web/logs", "..", "a b\tc", "日本語データ", "CON."];
    {
        let (engine, _) = open(&mem);
        for (i, name) in names.iter().enumerate() {
            engine.register(
                name,
                Dataset::from_rows(&rows(3, 2, 90 + i as u64)).unwrap(),
            );
            engine
                .update_batch(name, &rows(1, 2, 100 + i as u64), &[0])
                .unwrap();
        }
        engine.shutdown();
    }
    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, names.len());
    assert_eq!(report.records_replayed, names.len() as u64);
    for name in names {
        let entry = engine.dataset(name).expect("recovered under its own name");
        assert_eq!(entry.live_ids().as_slice(), &[1, 2, 3]);
        engine.execute(&SkylineQuery::new(name)).unwrap();
    }
}

#[test]
fn sharded_registration_recovers_sharded() {
    let mem = MemIo::new();
    let pool = ThreadPool::new(2);
    let data = skybench::generate(Distribution::Anticorrelated, 2_000, 3, 7, &pool);
    let expect = verify::naive_skyline(&data);
    {
        let (engine, _) = open(&mem);
        engine.register_sharded("sh", data, 4, skybench::PartitionerKind::Grid);
        engine.shutdown();
    }
    let (engine, report) = open(&mem);
    assert_eq!(report.datasets, 1);
    let got = engine.execute(&SkylineQuery::new("sh")).unwrap();
    assert_eq!(got.indices(), expect.as_slice());
}
