//! Facade-level engine tests: the acceptance demo, enforced by the
//! test suite — one registered dataset serving several subspace
//! queries, with the planner provably adapting and the cache provably
//! skipping recomputation.

use skybench::prelude::*;
use skybench::{generate, verify, Strategy};

#[test]
fn one_registration_serves_many_subspaces_with_adaptive_plans() {
    let threads = 4;
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 12_000, 8, 77, &gen_pool);
    let reference = data.clone();

    let engine = Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    engine.register("listings", data);

    let queries = [
        SkylineQuery::new("listings"),
        SkylineQuery::new("listings").dims([0, 1]),
        SkylineQuery::new("listings").dims([3]),
        SkylineQuery::new("listings").dims([2, 5, 7]),
    ];

    let mut algorithms = Vec::new();
    for query in &queries {
        let cold = engine.execute(query).unwrap();
        assert!(!cold.cache_hit);

        // Correctness of every served subspace against brute force.
        let dims: Vec<usize> = query
            .selected_dims()
            .map(|d| d.to_vec())
            .unwrap_or_else(|| (0..8).collect());
        let expect = verify::naive_skyline_on(&reference, &dims);
        assert_eq!(cold.indices(), expect.as_slice(), "{dims:?}");

        // The measured cache-hit path: identical indices, no stats
        // (nothing recomputed), and the Cached strategy marker.
        let warm = engine.execute(query).unwrap();
        assert!(warm.cache_hit);
        assert!(warm.stats.is_none());
        assert_eq!(warm.plan.strategy, Strategy::Cached);
        assert_eq!(warm.indices(), cold.indices());

        if let Some(a) = cold.plan.strategy.algorithm() {
            algorithms.push(a);
        }
    }

    // The planner picked at least two different algorithms across the
    // subspaces of this single registration (plus the algorithm-free
    // min-scan for the 1-d query).
    algorithms.sort_by_key(|a| a.name());
    algorithms.dedup();
    assert!(
        algorithms.len() >= 2,
        "planner did not adapt: {algorithms:?}"
    );

    let stats = engine.cache_stats();
    assert_eq!(stats.hits as usize, queries.len());
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn prelude_exposes_the_engine_types() {
    // Compile-time check that the prelude is sufficient for engine use.
    let engine: Engine = Engine::new();
    let _cfg = EngineConfig::default();
    let _q: SkylineQuery = SkylineQuery::new("x").limit(1);
    assert!(engine.datasets().is_empty());
    assert_eq!(engine.cache_stats().hits, 0);
}
