//! End-to-end durability through the HTTP front door: a durable
//! engine serves real sockets under concurrent load (clients using
//! the retrying `post_json_with_retry` path), mutates while serving,
//! drains, and is reopened from its durable directory — after which
//! the recovered dataset must answer exactly like the naive oracle
//! and the planner must wake up with the previous process's fitted
//! thresholds already installed.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skybench::prelude::*;
use skybench::{
    generate, parse_json, verify, Client, Distribution, FeedbackConfig, Json, Observation,
    PlanKind, RetryPolicy, ServeConfig, SkylineServer,
};

fn scratch_dir() -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("skybench-restart-{}-{nanos}", std::process::id()))
}

fn durable_cfg() -> EngineConfig {
    EngineConfig {
        threads: 2,
        feedback: FeedbackConfig {
            enabled: true,
            min_observations: 8,
            ..FeedbackConfig::default()
        },
        ..EngineConfig::default()
    }
}

fn indices_of(body: &str) -> Vec<u32> {
    parse_json(body)
        .expect("valid JSON")
        .get("indices")
        .and_then(Json::as_arr)
        .expect("indices array")
        .iter()
        .map(|v| v.as_u64().expect("integer index") as u32)
        .collect()
}

#[test]
fn restart_preserves_results_and_warm_planner_thresholds() {
    let dir = scratch_dir();
    let pool = ThreadPool::new(2);

    // ---- First life: fit the planner, serve under load, mutate,
    // drain. ----
    let fitted;
    let live_before;
    {
        let (engine, _) = Engine::open_durable(&dir, durable_cfg()).expect("open durable");
        let engine = Arc::new(engine);
        engine.register(
            "data",
            generate(Distribution::Anticorrelated, 900, 4, 7, &pool),
        );

        // Skewed synthetic observations make one forced refit move the
        // thresholds — the fit the next process must wake up with.
        let fb = engine.feedback().expect("feedback is enabled");
        for _ in 0..8 {
            for (algo, us) in [(Algorithm::QFlow, 900), (Algorithm::Hybrid, 300)] {
                fb.record(Observation {
                    kind: PlanKind::Algo(algo),
                    n: 20_000,
                    d: 4,
                    max_mask: 0,
                    sample_skyline_frac: Some(0.02),
                    alpha: Some(1_024),
                    runtime: Duration::from_micros(us),
                    queue_wait: Duration::ZERO,
                });
            }
        }
        assert!(engine.refit_feedback(), "the skewed fit must install");
        fitted = engine.planner_config();

        let server = Arc::new(
            SkylineServer::start(Arc::clone(&engine), ServeConfig::default()).expect("bind"),
        );
        let addr = server.local_addr();

        // Concurrent retrying clients hammer queries while the main
        // thread mutates the dataset through the durable path, then
        // pulls the plug mid-load.
        thread::scope(|s| {
            for worker in 0..3u64 {
                s.spawn(move || {
                    let policy = RetryPolicy {
                        max_retries: 2,
                        base: Duration::from_millis(2),
                        cap: Duration::from_millis(20),
                        seed: 0xc0ffee ^ worker,
                    };
                    let Ok(mut client) = Client::connect(addr) else {
                        return;
                    };
                    for i in 0..30 {
                        let body = if i % 2 == 0 {
                            r#"{"dataset":"data"}"#
                        } else {
                            r#"{"dataset":"data","dims":[0,1]}"#
                        };
                        match client.post_json_with_retry("/v1/query", body, &policy) {
                            // 200 while serving, 503 once the drain
                            // begins and retries are exhausted.
                            Ok((resp, _)) if resp.status == 200 || resp.status == 503 => {}
                            Ok((resp, _)) => panic!("unexpected status {}", resp.status),
                            Err(_) => return, // listener gone mid-drain
                        }
                    }
                });
            }
            for seed in 0..4u64 {
                let fresh: Vec<Vec<f32>> = (0..3)
                    .map(|r| {
                        (0..4)
                            .map(|c| (seed * 31 + r * 7 + c) as f32 % 13.0)
                            .collect()
                    })
                    .collect();
                engine
                    .update_batch("data", &fresh, &[seed as u32])
                    .expect("durable mutation while serving");
                thread::sleep(Duration::from_millis(10));
            }
            server.shutdown();
        });

        live_before = engine
            .dataset("data")
            .unwrap()
            .live_ids()
            .as_slice()
            .to_vec();
    }

    // ---- Second life: reopen from the durable directory. ----
    let (engine, report) = Engine::open_durable(&dir, durable_cfg()).expect("reopen durable");
    let engine = Arc::new(engine);
    assert_eq!(report.datasets, 1);
    assert!(report.quarantined.is_empty());
    assert!(
        report.feedback_restored,
        "the persisted planner fit must be found"
    );
    assert_eq!(
        *engine.planner_config(),
        *fitted,
        "the planner must wake up with the pre-restart thresholds"
    );

    // Every acknowledged mutation survived the restart.
    let entry = engine.dataset("data").expect("recovered dataset");
    assert_eq!(entry.live_ids().as_slice(), live_before.as_slice());

    // And the recovered engine answers over the wire exactly like the
    // naive oracle on the recovered rows.
    let snapshot = entry.snapshot();
    let ids = entry.live_ids();
    let server = SkylineServer::start(Arc::clone(&engine), ServeConfig::default()).expect("rebind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"ok\""),
        "a clean recovery must not report degraded: {}",
        health.text()
    );

    for (body, dims) in [
        (r#"{"dataset":"data"}"#, vec![0usize, 1, 2, 3]),
        (r#"{"dataset":"data","dims":[0,1]}"#, vec![0, 1]),
        (r#"{"dataset":"data","dims":[1,2,3]}"#, vec![1, 2, 3]),
    ] {
        let resp = client.post_json("/v1/query", body).expect("request");
        assert_eq!(resp.status, 200, "{}", resp.text());
        let mut got = indices_of(&resp.text());
        got.sort_unstable();
        let expect: Vec<u32> = verify::naive_skyline_on_pref(&snapshot, &dims, 0)
            .iter()
            .map(|&k| ids[k as usize])
            .collect();
        assert_eq!(got, expect, "case {body} diverged from the oracle");
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
