//! Result invariance: the computed skyline is a property of the *set* of
//! points, so it must not change with tuning parameters, thread counts,
//! or input order.

use skybench::prelude::*;
use skybench::{generate, Rng};

fn reference(data: &Dataset) -> Vec<u32> {
    skybench::verify::naive_skyline(data)
}

#[test]
fn thread_count_invariance() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Anticorrelated, 2_000, 5, 5, &gen_pool);
    let expect = reference(&data);
    for algo in [
        Algorithm::PSkyline,
        Algorithm::Psfs,
        Algorithm::QFlow,
        Algorithm::Hybrid,
        Algorithm::PBSkyTree,
    ] {
        for t in [1usize, 2, 3, 4, 8] {
            let sky = SkylineBuilder::new()
                .algorithm(algo)
                .threads(t)
                .compute(&data);
            assert_eq!(sky.indices(), expect.as_slice(), "{algo} t={t}");
        }
    }
}

#[test]
fn alpha_invariance() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 3_000, 4, 11, &gen_pool);
    let expect = reference(&data);
    for algo in [Algorithm::QFlow, Algorithm::Hybrid, Algorithm::Psfs] {
        for alpha in [1usize, 2, 17, 128, 1 << 14, 1 << 22] {
            let sky = SkylineBuilder::new()
                .algorithm(algo)
                .threads(2)
                .alpha(alpha)
                .compute(&data);
            assert_eq!(sky.indices(), expect.as_slice(), "{algo} alpha={alpha}");
        }
    }
}

#[test]
fn pivot_and_beta_invariance() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Anticorrelated, 1_500, 6, 3, &gen_pool);
    let expect = reference(&data);
    for pivot in PivotStrategy::ALL {
        for beta in [1usize, 4, 8, 64] {
            let sky = SkylineBuilder::new()
                .pivot(pivot)
                .prefilter_beta(beta)
                .threads(2)
                .compute(&data);
            assert_eq!(sky.indices(), expect.as_slice(), "{pivot:?} beta={beta}");
        }
    }
}

#[test]
fn shuffle_invariance() {
    // Permuting the input must permute the skyline identically.
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 1_000, 4, 21, &gen_pool);
    let expect: std::collections::BTreeSet<Vec<u32>> = reference(&data)
        .iter()
        .map(|&i| data.row(i as usize).iter().map(|v| v.to_bits()).collect())
        .collect();

    let mut perm: Vec<usize> = (0..data.len()).collect();
    let mut rng = Rng::seed_from(99);
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.next_below(i + 1));
    }
    let shuffled = Dataset::from_rows(
        &perm
            .iter()
            .map(|&i| data.row(i).to_vec())
            .collect::<Vec<_>>(),
    )
    .unwrap();

    for algo in [Algorithm::Hybrid, Algorithm::QFlow, Algorithm::BSkyTree] {
        let sky = SkylineBuilder::new()
            .algorithm(algo)
            .threads(2)
            .compute(&shuffled);
        let got: std::collections::BTreeSet<Vec<u32>> = sky
            .points(&shuffled)
            .map(|(_, row)| row.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(got, expect, "{algo} not shuffle-invariant");
    }
}

#[test]
fn skyline_of_skyline_is_identity() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Anticorrelated, 1_200, 4, 13, &gen_pool);
    let sky = skyline(&data);
    let sky_rows: Vec<Vec<f32>> = sky.points(&data).map(|(_, r)| r.to_vec()).collect();
    let sky_data = Dataset::from_rows(&sky_rows).unwrap();
    let sky2 = skyline(&sky_data);
    assert_eq!(sky2.len(), sky.len(), "skyline must be idempotent");
}

#[test]
fn removing_dominated_points_changes_nothing() {
    let gen_pool = ThreadPool::new(2);
    let data = generate(Distribution::Independent, 1_000, 3, 8, &gen_pool);
    let sky = skyline(&data);
    // Drop every non-skyline point with odd index.
    let keep: Vec<Vec<f32>> = (0..data.len())
        .filter(|&i| sky.contains(i as u32) || i % 2 == 0)
        .map(|i| data.row(i).to_vec())
        .collect();
    let reduced = Dataset::from_rows(&keep).unwrap();
    let sky2 = skyline(&reduced);
    assert_eq!(sky2.len(), sky.len());
}
